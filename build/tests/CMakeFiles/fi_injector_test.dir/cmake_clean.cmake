file(REMOVE_RECURSE
  "CMakeFiles/fi_injector_test.dir/fi/injector_test.cc.o"
  "CMakeFiles/fi_injector_test.dir/fi/injector_test.cc.o.d"
  "fi_injector_test"
  "fi_injector_test.pdb"
  "fi_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
