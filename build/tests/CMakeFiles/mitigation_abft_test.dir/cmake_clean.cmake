file(REMOVE_RECURSE
  "CMakeFiles/mitigation_abft_test.dir/mitigation/abft_test.cc.o"
  "CMakeFiles/mitigation_abft_test.dir/mitigation/abft_test.cc.o.d"
  "mitigation_abft_test"
  "mitigation_abft_test.pdb"
  "mitigation_abft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_abft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
