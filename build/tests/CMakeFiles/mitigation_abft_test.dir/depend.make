# Empty dependencies file for mitigation_abft_test.
# This may be replaced when dependencies are built.
