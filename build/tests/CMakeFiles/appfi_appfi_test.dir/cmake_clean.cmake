file(REMOVE_RECURSE
  "CMakeFiles/appfi_appfi_test.dir/appfi/appfi_test.cc.o"
  "CMakeFiles/appfi_appfi_test.dir/appfi/appfi_test.cc.o.d"
  "appfi_appfi_test"
  "appfi_appfi_test.pdb"
  "appfi_appfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appfi_appfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
