# Empty compiler generated dependencies file for appfi_appfi_test.
# This may be replaced when dependencies are built.
