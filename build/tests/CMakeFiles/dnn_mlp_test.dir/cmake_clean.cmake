file(REMOVE_RECURSE
  "CMakeFiles/dnn_mlp_test.dir/dnn/mlp_test.cc.o"
  "CMakeFiles/dnn_mlp_test.dir/dnn/mlp_test.cc.o.d"
  "dnn_mlp_test"
  "dnn_mlp_test.pdb"
  "dnn_mlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
