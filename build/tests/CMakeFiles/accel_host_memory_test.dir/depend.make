# Empty dependencies file for accel_host_memory_test.
# This may be replaced when dependencies are built.
