file(REMOVE_RECURSE
  "CMakeFiles/accel_host_memory_test.dir/accel/host_memory_test.cc.o"
  "CMakeFiles/accel_host_memory_test.dir/accel/host_memory_test.cc.o.d"
  "accel_host_memory_test"
  "accel_host_memory_test.pdb"
  "accel_host_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_host_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
