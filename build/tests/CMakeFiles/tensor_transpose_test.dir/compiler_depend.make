# Empty compiler generated dependencies file for tensor_transpose_test.
# This may be replaced when dependencies are built.
