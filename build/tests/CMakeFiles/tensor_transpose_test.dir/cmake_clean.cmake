file(REMOVE_RECURSE
  "CMakeFiles/tensor_transpose_test.dir/tensor/transpose_test.cc.o"
  "CMakeFiles/tensor_transpose_test.dir/tensor/transpose_test.cc.o.d"
  "tensor_transpose_test"
  "tensor_transpose_test.pdb"
  "tensor_transpose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_transpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
