file(REMOVE_RECURSE
  "CMakeFiles/fi_fault_test.dir/fi/fault_test.cc.o"
  "CMakeFiles/fi_fault_test.dir/fi/fault_test.cc.o.d"
  "fi_fault_test"
  "fi_fault_test.pdb"
  "fi_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
