# Empty compiler generated dependencies file for fi_fault_test.
# This may be replaced when dependencies are built.
