file(REMOVE_RECURSE
  "CMakeFiles/accel_scratchpad_test.dir/accel/scratchpad_test.cc.o"
  "CMakeFiles/accel_scratchpad_test.dir/accel/scratchpad_test.cc.o.d"
  "accel_scratchpad_test"
  "accel_scratchpad_test.pdb"
  "accel_scratchpad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_scratchpad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
