# Empty compiler generated dependencies file for accel_scratchpad_test.
# This may be replaced when dependencies are built.
