file(REMOVE_RECURSE
  "CMakeFiles/patterns_predictor_signals_test.dir/patterns/predictor_signals_test.cc.o"
  "CMakeFiles/patterns_predictor_signals_test.dir/patterns/predictor_signals_test.cc.o.d"
  "patterns_predictor_signals_test"
  "patterns_predictor_signals_test.pdb"
  "patterns_predictor_signals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_predictor_signals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
