# Empty dependencies file for fi_workload_test.
# This may be replaced when dependencies are built.
