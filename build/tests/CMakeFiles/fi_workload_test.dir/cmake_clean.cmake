file(REMOVE_RECURSE
  "CMakeFiles/fi_workload_test.dir/fi/workload_test.cc.o"
  "CMakeFiles/fi_workload_test.dir/fi/workload_test.cc.o.d"
  "fi_workload_test"
  "fi_workload_test.pdb"
  "fi_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
