# Empty compiler generated dependencies file for patterns_dictionary_test.
# This may be replaced when dependencies are built.
