file(REMOVE_RECURSE
  "CMakeFiles/patterns_dictionary_test.dir/patterns/dictionary_test.cc.o"
  "CMakeFiles/patterns_dictionary_test.dir/patterns/dictionary_test.cc.o.d"
  "patterns_dictionary_test"
  "patterns_dictionary_test.pdb"
  "patterns_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
