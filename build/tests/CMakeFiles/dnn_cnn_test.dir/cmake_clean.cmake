file(REMOVE_RECURSE
  "CMakeFiles/dnn_cnn_test.dir/dnn/cnn_test.cc.o"
  "CMakeFiles/dnn_cnn_test.dir/dnn/cnn_test.cc.o.d"
  "dnn_cnn_test"
  "dnn_cnn_test.pdb"
  "dnn_cnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_cnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
