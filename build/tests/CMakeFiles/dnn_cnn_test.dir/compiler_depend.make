# Empty compiler generated dependencies file for dnn_cnn_test.
# This may be replaced when dependencies are built.
