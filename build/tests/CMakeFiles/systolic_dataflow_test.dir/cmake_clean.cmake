file(REMOVE_RECURSE
  "CMakeFiles/systolic_dataflow_test.dir/systolic/dataflow_test.cc.o"
  "CMakeFiles/systolic_dataflow_test.dir/systolic/dataflow_test.cc.o.d"
  "systolic_dataflow_test"
  "systolic_dataflow_test.pdb"
  "systolic_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
