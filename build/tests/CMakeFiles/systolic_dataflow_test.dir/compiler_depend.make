# Empty compiler generated dependencies file for systolic_dataflow_test.
# This may be replaced when dependencies are built.
