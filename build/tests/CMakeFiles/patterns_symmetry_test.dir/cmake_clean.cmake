file(REMOVE_RECURSE
  "CMakeFiles/patterns_symmetry_test.dir/patterns/symmetry_test.cc.o"
  "CMakeFiles/patterns_symmetry_test.dir/patterns/symmetry_test.cc.o.d"
  "patterns_symmetry_test"
  "patterns_symmetry_test.pdb"
  "patterns_symmetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
