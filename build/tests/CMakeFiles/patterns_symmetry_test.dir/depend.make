# Empty dependencies file for patterns_symmetry_test.
# This may be replaced when dependencies are built.
