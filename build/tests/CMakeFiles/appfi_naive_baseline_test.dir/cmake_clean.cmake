file(REMOVE_RECURSE
  "CMakeFiles/appfi_naive_baseline_test.dir/appfi/naive_baseline_test.cc.o"
  "CMakeFiles/appfi_naive_baseline_test.dir/appfi/naive_baseline_test.cc.o.d"
  "appfi_naive_baseline_test"
  "appfi_naive_baseline_test.pdb"
  "appfi_naive_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appfi_naive_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
