# Empty dependencies file for appfi_naive_baseline_test.
# This may be replaced when dependencies are built.
