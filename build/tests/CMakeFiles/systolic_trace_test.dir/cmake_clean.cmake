file(REMOVE_RECURSE
  "CMakeFiles/systolic_trace_test.dir/systolic/trace_test.cc.o"
  "CMakeFiles/systolic_trace_test.dir/systolic/trace_test.cc.o.d"
  "systolic_trace_test"
  "systolic_trace_test.pdb"
  "systolic_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
