file(REMOVE_RECURSE
  "CMakeFiles/tensor_shift_gemm_test.dir/tensor/shift_gemm_test.cc.o"
  "CMakeFiles/tensor_shift_gemm_test.dir/tensor/shift_gemm_test.cc.o.d"
  "tensor_shift_gemm_test"
  "tensor_shift_gemm_test.pdb"
  "tensor_shift_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_shift_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
