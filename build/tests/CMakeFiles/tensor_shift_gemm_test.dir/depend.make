# Empty dependencies file for tensor_shift_gemm_test.
# This may be replaced when dependencies are built.
