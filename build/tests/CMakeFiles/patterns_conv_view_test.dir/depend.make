# Empty dependencies file for patterns_conv_view_test.
# This may be replaced when dependencies are built.
