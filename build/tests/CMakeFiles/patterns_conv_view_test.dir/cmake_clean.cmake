file(REMOVE_RECURSE
  "CMakeFiles/patterns_conv_view_test.dir/patterns/conv_view_test.cc.o"
  "CMakeFiles/patterns_conv_view_test.dir/patterns/conv_view_test.cc.o.d"
  "patterns_conv_view_test"
  "patterns_conv_view_test.pdb"
  "patterns_conv_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_conv_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
