file(REMOVE_RECURSE
  "CMakeFiles/tensor_tiling_test.dir/tensor/tiling_test.cc.o"
  "CMakeFiles/tensor_tiling_test.dir/tensor/tiling_test.cc.o.d"
  "tensor_tiling_test"
  "tensor_tiling_test.pdb"
  "tensor_tiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_tiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
