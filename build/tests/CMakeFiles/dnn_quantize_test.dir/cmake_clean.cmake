file(REMOVE_RECURSE
  "CMakeFiles/dnn_quantize_test.dir/dnn/quantize_test.cc.o"
  "CMakeFiles/dnn_quantize_test.dir/dnn/quantize_test.cc.o.d"
  "dnn_quantize_test"
  "dnn_quantize_test.pdb"
  "dnn_quantize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_quantize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
