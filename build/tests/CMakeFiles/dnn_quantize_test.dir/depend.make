# Empty dependencies file for dnn_quantize_test.
# This may be replaced when dependencies are built.
