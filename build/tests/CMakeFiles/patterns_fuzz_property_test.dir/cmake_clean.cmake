file(REMOVE_RECURSE
  "CMakeFiles/patterns_fuzz_property_test.dir/patterns/fuzz_property_test.cc.o"
  "CMakeFiles/patterns_fuzz_property_test.dir/patterns/fuzz_property_test.cc.o.d"
  "patterns_fuzz_property_test"
  "patterns_fuzz_property_test.pdb"
  "patterns_fuzz_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_fuzz_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
