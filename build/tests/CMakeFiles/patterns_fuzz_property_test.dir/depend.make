# Empty dependencies file for patterns_fuzz_property_test.
# This may be replaced when dependencies are built.
