file(REMOVE_RECURSE
  "CMakeFiles/systolic_input_stationary_test.dir/systolic/input_stationary_test.cc.o"
  "CMakeFiles/systolic_input_stationary_test.dir/systolic/input_stationary_test.cc.o.d"
  "systolic_input_stationary_test"
  "systolic_input_stationary_test.pdb"
  "systolic_input_stationary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_input_stationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
