# Empty dependencies file for systolic_input_stationary_test.
# This may be replaced when dependencies are built.
