# Empty dependencies file for accel_controller_test.
# This may be replaced when dependencies are built.
