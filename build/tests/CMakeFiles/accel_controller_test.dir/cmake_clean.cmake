file(REMOVE_RECURSE
  "CMakeFiles/accel_controller_test.dir/accel/controller_test.cc.o"
  "CMakeFiles/accel_controller_test.dir/accel/controller_test.cc.o.d"
  "accel_controller_test"
  "accel_controller_test.pdb"
  "accel_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
