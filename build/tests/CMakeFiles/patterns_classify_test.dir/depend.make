# Empty dependencies file for patterns_classify_test.
# This may be replaced when dependencies are built.
