file(REMOVE_RECURSE
  "CMakeFiles/patterns_classify_test.dir/patterns/classify_test.cc.o"
  "CMakeFiles/patterns_classify_test.dir/patterns/classify_test.cc.o.d"
  "patterns_classify_test"
  "patterns_classify_test.pdb"
  "patterns_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
