file(REMOVE_RECURSE
  "CMakeFiles/accel_driver_is_test.dir/accel/driver_is_test.cc.o"
  "CMakeFiles/accel_driver_is_test.dir/accel/driver_is_test.cc.o.d"
  "accel_driver_is_test"
  "accel_driver_is_test.pdb"
  "accel_driver_is_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_driver_is_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
