file(REMOVE_RECURSE
  "CMakeFiles/systolic_array_test.dir/systolic/array_test.cc.o"
  "CMakeFiles/systolic_array_test.dir/systolic/array_test.cc.o.d"
  "systolic_array_test"
  "systolic_array_test.pdb"
  "systolic_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
