# Empty compiler generated dependencies file for patterns_campaign_parallel_test.
# This may be replaced when dependencies are built.
