file(REMOVE_RECURSE
  "CMakeFiles/patterns_corruption_test.dir/patterns/corruption_test.cc.o"
  "CMakeFiles/patterns_corruption_test.dir/patterns/corruption_test.cc.o.d"
  "patterns_corruption_test"
  "patterns_corruption_test.pdb"
  "patterns_corruption_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
