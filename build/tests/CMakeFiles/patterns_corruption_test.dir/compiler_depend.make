# Empty compiler generated dependencies file for patterns_corruption_test.
# This may be replaced when dependencies are built.
