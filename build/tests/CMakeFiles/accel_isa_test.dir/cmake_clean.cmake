file(REMOVE_RECURSE
  "CMakeFiles/accel_isa_test.dir/accel/isa_test.cc.o"
  "CMakeFiles/accel_isa_test.dir/accel/isa_test.cc.o.d"
  "accel_isa_test"
  "accel_isa_test.pdb"
  "accel_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
