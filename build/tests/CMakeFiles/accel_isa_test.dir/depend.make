# Empty dependencies file for accel_isa_test.
# This may be replaced when dependencies are built.
