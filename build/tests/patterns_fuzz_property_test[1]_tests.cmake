add_test([=[FuzzPropertyTest.PipelineInvariantsHoldOnRandomConfigurations]=]  /root/repo/build/tests/patterns_fuzz_property_test [==[--gtest_filter=FuzzPropertyTest.PipelineInvariantsHoldOnRandomConfigurations]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[FuzzPropertyTest.PipelineInvariantsHoldOnRandomConfigurations]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  patterns_fuzz_property_test_TESTS FuzzPropertyTest.PipelineInvariantsHoldOnRandomConfigurations)
