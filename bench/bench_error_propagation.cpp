// Intermediate-layer error propagation — the question the paper opens
// with: prior work measured only end accuracy, but "it is not clear how
// these faults manifest at the intermediate layers of the DNNs" (Sec. I).
//
// A quantized CNN (the paper's 3×3×3×8 conv on a 16×16 input, then
// ReLU/requantize, 2×2 max-pool, and a dense head) runs on the simulated
// accelerator under an exhaustive 256-site stuck-at campaign. For every
// fault we measure the corrupted-element fraction at each observation tap
// and whether the final classification flips (SDC).
#include <iostream>

#include "bench_util.h"
#include "dnn/cnn.h"
#include "dnn/mlp.h"
#include "fi/injector.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;
  const AccelConfig config = PaperAccel();

  ConvParams conv;
  conv.in_channels = 3;
  conv.height = 16;
  conv.width = 16;
  conv.out_channels = 8;
  conv.kernel_h = 3;
  conv.kernel_w = 3;
  const SmallCnn cnn(conv, 10, 7);

  Rng rng(12);
  Int8Tensor image({1, 3, 16, 16});
  for (std::int64_t i = 0; i < image.size(); ++i) {
    image.flat(i) = static_cast<std::int8_t>(rng.UniformInt(0, 60));
  }

  Accelerator accel(config);
  Driver driver(accel);
  std::cout << "=== Error propagation through conv -> relu/shift -> "
               "maxpool -> dense (256-site campaigns, SA1 bit 20) ===\n\n";
  const std::vector<std::size_t> widths = {3, 12, 12, 12, 12, 9, 8};
  PrintRow({"DF", "conv_raw", "conv_act", "pooled", "logits", "SDC",
            "masked"},
           widths);
  PrintRule(widths);

  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    ExecOptions options;
    options.dataflow = dataflow;
    const auto golden = cnn.Forward(image, &driver, options);
    const auto golden_prediction = ArgmaxRows(golden.logits);

    double raw_sum = 0.0;
    double act_sum = 0.0;
    double pooled_sum = 0.0;
    double logits_sum = 0.0;
    std::int64_t sdc = 0;
    std::int64_t masked = 0;
    const auto sites = AllPeCoords(config.array);
    for (const PeCoord site : sites) {
      FaultInjector injector(
          {StuckAtAdder(site, 20, StuckPolarity::kStuckAt1)}, config.array);
      accel.array().InstallFaultHook(&injector);
      const auto faulty = cnn.Forward(image, &driver, options);
      accel.array().ClearFaultHook();

      const double raw =
          SmallCnn::CorruptedFraction(golden.conv_raw, faulty.conv_raw);
      const double logits =
          SmallCnn::CorruptedFraction(golden.logits, faulty.logits);
      raw_sum += raw;
      act_sum += SmallCnn::CorruptedFraction(golden.conv_act,
                                             faulty.conv_act);
      pooled_sum +=
          SmallCnn::CorruptedFraction(golden.pooled, faulty.pooled);
      logits_sum += logits;
      if (ArgmaxRows(faulty.logits) != golden_prediction) ++sdc;
      if (raw == 0.0 && logits == 0.0) ++masked;
    }
    const auto n = static_cast<double>(sites.size());
    PrintRow({ToString(dataflow), Percent(raw_sum / n),
              Percent(act_sum / n), Percent(pooled_sum / n),
              Percent(logits_sum / n),
              std::to_string(sdc) + "/256", std::to_string(masked)},
             widths);
  }

  std::cout
      << "\nColumns show the mean corrupted-element fraction at each tap. "
         "Under WS a fault\ncorrupts (part of) whole conv channels, ~8x the "
         "footprint of OS's isolated\nelements — the intermediate-layer "
         "face of RQ1. ReLU/requantization and\nmax-pooling attenuate "
         "absolute corruption counts, but the dense head\nre-broadcasts "
         "any surviving corrupted value into every logit, so the final\n"
         "SDC rate is high for both dataflows at this high stuck bit: "
         "containment at the\nconv layer only pays off when downstream "
         "layers (or mitigations like ABFT)\ncan exploit the smaller "
         "footprint.\n"
      << "(Faults striking only the dense GEMM appear with conv taps clean "
         "but logits\ncorrupted; they count toward SDC, not toward "
         "'masked'.)\n";
  return 0;
}
