// Baseline comparison: hardware-model-aware FI vs the naive application-
// level injector.
//
// The paper's case for its characterization (Sec. I/IV): existing
// application-level tools (TensorFI, PyTorchFI, LLTFI) "do not consider
// systolic arrays", so their default single-element output perturbation
// misrepresents what a stuck-at MAC fault does. This bench quantifies the
// gap on every Table I configuration: how the naive model's corruption
// footprint and spatial class compare with exhaustive RTL-level ground
// truth, and with the pattern-based injector this framework provides.
#include <iostream>

#include "appfi/appfi.h"
#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Naive app-level FI (single random element) vs RTL-level "
               "ground truth ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 27, 12, 11, 11};
  PrintRow({"workload", "DF", "RTL dominant class", "RTL footprnt",
            "naive footp", "class match"},
           widths);
  PrintRule(widths);

  struct Row {
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  const Row rows[] = {
      {Gemm16x16(), Dataflow::kWeightStationary},
      {Gemm16x16(), Dataflow::kOutputStationary},
      {Gemm112x112(), Dataflow::kWeightStationary},
      {Gemm112x112(), Dataflow::kOutputStationary},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };

  for (const Row& row : rows) {
    CampaignConfig config;
    config.accel = PaperAccel();
    config.workload = row.workload;
    config.dataflow = row.dataflow;
    config.bit = 8;
    const CampaignResult rtl = bench::RunCampaignForBench(config);

    double rtl_mean = 0.0;
    std::int64_t active = 0;
    // The naive baseline always corrupts exactly one element, which the
    // classifier labels single-element — count the RTL experiments whose
    // observed class that matches.
    std::int64_t naive_class_matches = 0;
    for (const ExperimentRecord& record : rtl.records) {
      if (record.observed == PatternClass::kMasked) continue;
      ++active;
      rtl_mean += static_cast<double>(record.corrupted_count);
      if (record.observed == PatternClass::kSingleElement) {
        ++naive_class_matches;
      }
    }
    rtl_mean /= std::max<double>(1.0, static_cast<double>(active));

    // Sanity: the naive injector's footprint really is one element.
    Rng rng(1);
    FiRunner runner(config.accel);
    const auto golden =
        runner.RunGolden(row.workload, row.dataflow).output;
    const auto naive = InjectNaiveBaseline(golden, rng, 8);
    const auto naive_map = ExtractCorruption(golden, naive);

    PrintRow({row.workload.name, ToString(row.dataflow),
              ToString(rtl.DominantClass()),
              FormatDouble(rtl_mean, 1) + " elems",
              std::to_string(naive_map.count()) + " elem",
              active == 0 ? "-"
                          : Percent(static_cast<double>(naive_class_matches) /
                                    static_cast<double>(active))},
             widths);
  }

  std::cout
      << "\nThe naive model is spatially right only for untiled OS GEMMs; "
         "everywhere else\nit underestimates the corruption footprint by "
         "16-784x and always misses the\ncolumn/channel/multi-tile "
         "structure — the quantitative version of the paper's\nargument for "
         "feeding hardware-derived fault patterns to application-level\n"
         "injectors (which patterns/predictor.h + appfi provide, "
         "bit-exactly).\n";
  return 0;
}
