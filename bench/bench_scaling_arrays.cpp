// Array-size scaling — the paper's scalability discussion and future-work
// direction: RTL-level FI tops out at 16×16 on an industrial FPGA (a
// 128×128 array needs ~10× the logic cells available), so application-
// level injectors "can be used to bridge this gap and run FI campaigns
// even with larger systolic array sizes" (Sec. IV, Discussion).
//
// For arrays from 16×16 to 128×128 this bench reports: the exhaustive
// campaign size, the per-experiment simulation work (the thing that
// explodes), the symmetry-reduced experiment count, and a validation that
// the analytical predictor matches the simulator on sampled sites at every
// size — i.e., the analytical path stays trustworthy where exhaustive
// simulation stops being practical.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "fi/runner.h"
#include "patterns/symmetry.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Scaling to larger arrays (WS, GEMM = array size, SA1 "
               "bit 8) ===\n\n";
  const std::vector<std::size_t> widths = {9, 8, 15, 13, 13, 12};
  PrintRow({"array", "sites", "PE-steps/expt", "sim t/expt", "sym-reduced",
            "pred check"},
           widths);
  PrintRule(widths);

  for (const std::int32_t dim : {16, 32, 64, 128}) {
    AccelConfig config;
    config.array.rows = dim;
    config.array.cols = dim;
    config.max_compute_rows = 1024;
    config.spad_rows = 2048;
    config.acc_rows = 1024;
    config.dram_bytes = 64 << 20;

    WorkloadSpec workload;
    workload.name = "gemm-" + std::to_string(dim);
    workload.m = workload.k = workload.n = dim;

    FiRunner runner(config);
    const RunResult golden =
        runner.RunGolden(workload, Dataflow::kWeightStationary);

    // One timed simulated experiment.
    const FaultSpec probe = StuckAtAdder(PeCoord{dim / 2, dim / 2}, 8,
                                         StuckPolarity::kStuckAt1);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult faulty =
        runner.RunFaulty(workload, Dataflow::kWeightStationary, {&probe, 1});
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Predictor spot-check on a handful of sites (full sweeps are the test
    // suite's job; at 128×128 an exhaustive campaign is 16 384 runs).
    const ClassifyContext context =
        MakeClassifyContext(workload, config, Dataflow::kWeightStationary);
    int checked = 0;
    int exact = 0;
    for (const std::int32_t coord : {std::int32_t{0}, dim / 3, dim - 1}) {
      const FaultSpec fault = StuckAtAdder(PeCoord{coord, coord}, 8,
                                           StuckPolarity::kStuckAt1);
      const RunResult run =
          runner.RunFaulty(workload, Dataflow::kWeightStationary, {&fault, 1});
      const CorruptionMap map = ExtractCorruption(golden.output, run.output);
      const PredictedPattern prediction = PredictPattern(
          workload, config, Dataflow::kWeightStationary, fault);
      ++checked;
      if (map.corrupted == prediction.coords &&
          Classify(map, context) == prediction.pattern) {
        ++exact;
      }
    }

    const auto classes =
        PartitionFaultSites(workload, config, Dataflow::kWeightStationary);

    PrintRow({std::to_string(dim) + "x" + std::to_string(dim),
              std::to_string(config.array.num_pes()),
              std::to_string(faulty.pe_steps),
              FormatDouble(ms, 2) + " ms",
              std::to_string(classes.size()) + " expts",
              std::to_string(exact) + "/" + std::to_string(checked)},
             widths);
  }

  std::cout
      << "\nExhaustive simulation grows ~cubically with the array dimension "
         "(more sites x\nmore PE-steps each); the symmetry partition keeps "
         "WS campaigns at one\nexperiment per column, and the predictor "
         "stays exact at every size — the\npaper's proposed path to 128x128 "
         "and beyond.\n";
  return 0;
}
