// RQ1: how do fault patterns change with the data-flow mapping scheme, and
// is one dataflow more fault-tolerant (Sec. IV-A1)?
//
// Exhaustive 256-site campaigns on the 16×16 GEMM under OS and WS. The
// paper's finding: a single stuck-at corrupts one output element under OS
// but an entire output column under WS — OS contains faults 16× better,
// the observation Burel et al.'s OS-based fault-tolerant architecture
// builds on (Sec. V).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== RQ1: data-flow mapping schemes (GEMM 16x16, 256-site "
               "exhaustive, SA1 bit 8) ===\n\n";
  const std::vector<std::size_t> widths = {3, 24, 22, 22, 12};
  PrintRow({"DF", "class histogram", "corrupted/experiment",
            "blast radius (of 256)", "prediction"},
           widths);
  PrintRule(widths);

  // The dataflow axis is one sweep: three campaigns, one executor batch.
  SweepSpec spec;
  spec.accel = PaperAccel();
  spec.workloads = {Gemm16x16()};
  spec.dataflows = {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
                    Dataflow::kInputStationary};
  const ExecutorStats before = CampaignExecutor::Shared().stats();
  const std::vector<CampaignResult> results = RunSweep(spec);

  double os_mean = 0.0;
  double ws_mean = 0.0;
  for (std::size_t d = 0; d < spec.dataflows.size(); ++d) {
    const Dataflow dataflow = spec.dataflows[d];
    const CampaignResult& result = results[d];

    std::int64_t min_corrupted = 1 << 30;
    std::int64_t max_corrupted = 0;
    double mean = 0.0;
    for (const ExperimentRecord& record : result.records) {
      min_corrupted = std::min(min_corrupted, record.corrupted_count);
      max_corrupted = std::max(max_corrupted, record.corrupted_count);
      mean += static_cast<double>(record.corrupted_count);
    }
    mean /= static_cast<double>(result.records.size());
    if (dataflow == Dataflow::kOutputStationary) os_mean = mean;
    if (dataflow == Dataflow::kWeightStationary) ws_mean = mean;

    PrintRow({ToString(dataflow), HistogramString(result),
              "min " + std::to_string(min_corrupted) + " / mean " +
                  FormatDouble(mean, 1) + " / max " +
                  std::to_string(max_corrupted),
              Percent(mean / 256.0), Percent(result.ExactAgreement())},
             widths);
  }

  std::cout << "\nOS corrupts " << FormatDouble(os_mean, 1)
            << " element(s) per fault, WS corrupts " << FormatDouble(ws_mean, 1)
            << " — WS blast radius is " << FormatDouble(ws_mean / os_mean, 1)
            << "x larger.\nPaper: OS -> single-element (Fig. 3b), WS -> "
               "single-column (Fig. 3a); OS is the\nmore fault-tolerant "
               "mapping. The IS row extends the comparison to the third\n"
               "scheme the paper names (Sec. II-D): IS mirrors WS with "
               "row-shaped blast radius.\n";
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";
  return 0;
}
