// RQ3: how do fault patterns change with operation size — the tiling
// effect (Sec. IV-A3)?
//
// When the operation exceeds the array, the same faulty PE serves every
// tile, so the per-tile pattern replicates across the output: Fig. 3a→3c
// and 3b→3d for GEMM, Fig. 3e→3f/3g for convolution. This bench
// quantifies the replication factor per configuration.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== RQ3: operation size and the tiling effect (SA1 bit 8, "
               "exhaustive 256 sites) ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 27, 14, 22};
  PrintRow({"workload", "DF", "dominant class", "output tiles",
            "corrupted/experiment"},
           widths);
  PrintRule(widths);

  struct Row {
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  const Row rows[] = {
      {Gemm16x16(), Dataflow::kWeightStationary},
      {Gemm112x112(), Dataflow::kWeightStationary},
      {Gemm16x16(), Dataflow::kOutputStationary},
      {Gemm112x112(), Dataflow::kOutputStationary},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
      {Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };

  // One spec per (workload, dataflow) pair — not a cartesian product — and
  // the whole table is one executor batch.
  std::vector<SweepSpec> specs;
  for (const Row& row : rows) {
    SweepSpec spec;
    spec.accel = PaperAccel();
    spec.workloads = {row.workload};
    spec.dataflows = {row.dataflow};
    specs.push_back(std::move(spec));
  }
  const ExecutorStats before = CampaignExecutor::Shared().stats();
  const std::vector<CampaignResult> results = RunSweep(specs);

  for (std::size_t r = 0; r < std::size(rows); ++r) {
    const Row& row = rows[r];
    const CampaignResult& result = results[r];

    const TileGrid grid = Driver::PlanTiles(
        row.workload.GemmM(), row.workload.GemmN(), row.workload.GemmK(),
        specs[r].accel, row.dataflow);
    double mean = 0.0;
    for (const ExperimentRecord& record : result.records) {
      mean += static_cast<double>(record.corrupted_count);
    }
    mean /= static_cast<double>(result.records.size());

    PrintRow({row.workload.name, ToString(row.dataflow),
              ToString(result.DominantClass()),
              std::to_string(grid.m_tiles()) + "x" +
                  std::to_string(grid.n_tiles()),
              "mean " + FormatDouble(mean, 1)},
             widths);
  }

  std::cout
      << "\nPaper: growing the GEMM from 16x16 to 112x112 turns "
         "single-column into\nsingle-column-multi-tile (WS, Fig. 3c) and "
         "single-element into\nsingle-element-multi-tile (OS, Fig. 3d: the "
         "same element offset in every one of\nthe 7x7 tiles). For "
         "convolution the tiled kernel corrupts multiple channels\nand the "
         "112x112 input keeps the same class as the 16x16 input (Fig. 3f vs "
         "3g) —\nthe tiling structure, not the input size, fixes the "
         "pattern.\n";
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";
  return 0;
}
