// Shared helpers for the benchmark/reproduction binaries: the paper's
// accelerator configuration and simple fixed-width table printing.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "patterns/campaign.h"

namespace saffire::bench {

// Worker count for campaign benches: all hardware threads.
inline int BenchThreads() { return DefaultCampaignThreads(); }

// The evaluation platform of Table I: 16×16 INT8 systolic array.
inline AccelConfig PaperAccel() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 16 << 20;
  return config;
}

inline void PrintRule(const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    line += std::string(widths[i] + 2, '-');
    if (i + 1 < widths.size()) line += '+';
  }
  std::cout << line << '\n';
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += ' ';
    line += PadRight(cells[i], widths[i]);
    line += ' ';
    if (i + 1 < cells.size()) line += '|';
  }
  std::cout << line << '\n';
}

// Formats the non-masked class histogram as "class×count, ...".
inline std::string HistogramString(const CampaignResult& result) {
  std::vector<std::string> parts;
  for (const auto& [pattern, count] : result.Histogram()) {
    parts.push_back(ToString(pattern) + "x" + std::to_string(count));
  }
  return Join(parts, ", ");
}

inline std::string Percent(double fraction) {
  return FormatDouble(100.0 * fraction, 1) + "%";
}

}  // namespace saffire::bench
