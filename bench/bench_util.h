// Shared helpers for the benchmark/reproduction binaries: the paper's
// accelerator configuration and simple fixed-width table printing.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "patterns/campaign.h"
#include "service/executor.h"
#include "service/sink.h"

namespace saffire::bench {

// Worker count for campaign benches: all hardware threads.
inline int BenchThreads() { return DefaultCampaignThreads(); }

// Runs every campaign of `specs` through the shared executor pool as one
// batch (so workers keep their simulators across campaigns) and returns
// the per-campaign results in canonical plan order.
inline std::vector<CampaignResult> RunSweep(
    const std::vector<SweepSpec>& specs) {
  CollectorSink collector;
  CampaignExecutor::Shared().Run(BuildCampaignPlan(specs), collector);
  return collector.TakeResults();
}

inline std::vector<CampaignResult> RunSweep(const SweepSpec& spec) {
  return RunSweep(std::vector<SweepSpec>{spec});
}

// One-line executor summary for the work done since `before` was sampled:
// how many simulators the pool built vs reused, and golden-run cache hits.
inline std::string ExecutorStatsLine(const ExecutorStats& before) {
  const ExecutorStats after = CampaignExecutor::Shared().stats();
  std::string line = "[executor] threads=";
  line += std::to_string(after.pool_threads);
  line += " campaigns=";
  line += std::to_string(after.campaigns_executed - before.campaigns_executed);
  line += " experiments=";
  line += std::to_string(after.experiments_run - before.experiments_run);
  line += " simulators: constructed=";
  line += std::to_string(after.simulators_constructed -
                         before.simulators_constructed);
  line += " reused=";
  line += std::to_string(after.simulators_reused - before.simulators_reused);
  line += " golden-cache-hits=";
  line += std::to_string(after.golden_cache_hits - before.golden_cache_hits);
  return line;
}

// The evaluation platform of Table I: 16×16 INT8 systolic array.
inline AccelConfig PaperAccel() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 16 << 20;
  return config;
}

inline void PrintRule(const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    line += std::string(widths[i] + 2, '-');
    if (i + 1 < widths.size()) line += '+';
  }
  std::cout << line << '\n';
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += ' ';
    line += PadRight(cells[i], widths[i]);
    line += ' ';
    if (i + 1 < cells.size()) line += '|';
  }
  std::cout << line << '\n';
}

// Formats the non-masked class histogram as "class×count, ...".
inline std::string HistogramString(const CampaignResult& result) {
  std::vector<std::string> parts;
  for (const auto& [pattern, count] : result.Histogram()) {
    parts.push_back(ToString(pattern) + "x" + std::to_string(count));
  }
  return Join(parts, ", ");
}

inline std::string Percent(double fraction) {
  return FormatDouble(100.0 * fraction, 1) + "%";
}

}  // namespace saffire::bench
