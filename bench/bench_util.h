// Shared helpers for the benchmark/reproduction binaries: the paper's
// accelerator configuration, simple fixed-width table printing, and the
// common bench flags (--engine / --records-csv / --benchmark_out /
// --benchmark_out_format / --benchmark_min_time) with a
// google-benchmark-compatible JSON reporter behind them, so plain-main
// benches emit the same BENCH_*.json artifacts as the benchmark::benchmark
// binaries.
#pragma once

#include <chrono>
#include <ctime>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"
#include "systolic/simd_ops.h"

namespace saffire::bench {

// Flags shared by the reproduction benches. Both "--flag=value" and
// "--flag value" spellings are accepted; unknown flags throw
// std::invalid_argument so CI typos fail loudly instead of silently
// benchmarking the wrong thing.
struct BenchOptions {
  // Campaign engine override ("" keeps the bench's default). Parsed by the
  // bench via ParseCampaignEngine so the CLI and benches share one table.
  std::string engine;
  // SIMD backend for the batch datapath ({auto|avx2|scalar}, "" keeps the
  // process default). Applied process-wide by ParseBenchArgs so the CI can
  // measure the scalar and vector kernels from the same binary.
  std::string simd;
  // Stream every campaign record to this CSV (WriteCampaignCsv schema) —
  // what CI diffs across engines.
  std::string records_csv;
  // google-benchmark-compatible JSON timing output ("" = none).
  std::string benchmark_out;
  std::string benchmark_out_format = "json";
  // Minimum wall time per measurement in seconds; "0.05s" and "0.05" both
  // parse. 0 means one iteration. Benches may also use a non-zero value to
  // select their smoke-sized matrix (documented per bench).
  double min_time = 0.0;
  // Observability outputs (src/obs/), "" = disabled. Enabling tracing or
  // metrics perturbs the timings being measured — CI records them in a
  // separate run from the regression-checked one.
  std::string trace_out;    // Chrome trace_event JSON of the measured work
  std::string metrics_out;  // registry exposition after the run ('-'=stdout)
  std::string metrics_format = "prom";  // prom | json
};

inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  const auto assign = [&options](const std::string& name,
                                 const std::string& value) {
    if (name == "engine") {
      options.engine = value;
    } else if (name == "simd") {
      options.simd = value;
    } else if (name == "records-csv") {
      options.records_csv = value;
    } else if (name == "benchmark_out") {
      options.benchmark_out = value;
    } else if (name == "benchmark_out_format") {
      options.benchmark_out_format = value;
    } else if (name == "trace-out") {
      options.trace_out = value;
    } else if (name == "metrics-out") {
      options.metrics_out = value;
    } else if (name == "metrics-format") {
      options.metrics_format = value;
    } else if (name == "benchmark_min_time") {
      std::string text = value;
      if (!text.empty() && text.back() == 's') text.pop_back();
      try {
        options.min_time = std::stod(text);
      } catch (const std::exception&) {
        throw std::invalid_argument("bad --benchmark_min_time '" + value +
                                    "'");
      }
      if (options.min_time < 0) {
        throw std::invalid_argument("bad --benchmark_min_time '" + value +
                                    "'");
      }
    } else {
      throw std::invalid_argument("unknown bench flag '--" + name + "'");
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      throw std::invalid_argument("expected a --flag, got '" + arg + "'");
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      assign(body.substr(0, eq), body.substr(eq + 1));
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag '" + arg + "' expects a value");
      }
      assign(body, argv[++i]);
    }
  }
  if (options.benchmark_out_format != "json") {
    throw std::invalid_argument("unsupported --benchmark_out_format '" +
                                options.benchmark_out_format +
                                "' (only json)");
  }
  if (options.metrics_format != "prom" && options.metrics_format != "json") {
    throw std::invalid_argument("unknown --metrics-format '" +
                                options.metrics_format +
                                "' (expected prom|json)");
  }
  if (!options.simd.empty()) {
    ConfigureSimdFromString(options.simd, "--simd");
  }
  return options;
}

// Raises the span gates implied by the bench's observability flags. Call
// before the measured work; a bench with neither flag pays only the
// disabled-span fast path (what the regression job measures).
inline void EnableBenchObservability(const BenchOptions& options) {
  if (!options.trace_out.empty()) obs::TraceSession::Instance().Start();
  if (!options.metrics_out.empty()) obs::SetPhaseMetricsEnabled(true);
}

// Writes the trace / metrics artifacts requested by the flags. Returns
// false (after printing to stderr) if an output file cannot be opened.
inline bool ExportBenchObservability(const BenchOptions& options) {
  if (!options.trace_out.empty()) {
    obs::TraceSession::Instance().Stop();
    std::ofstream out(options.trace_out);
    if (!out) {
      std::cerr << "cannot open '" << options.trace_out << "'\n";
      return false;
    }
    obs::TraceSession::Instance().WriteChromeTrace(out);
  }
  if (!options.metrics_out.empty()) {
    const auto write = [&options](std::ostream& out) {
      if (options.metrics_format == "json") {
        obs::MetricsRegistry::Default().WriteJson(out);
        out << "\n";
      } else {
        obs::MetricsRegistry::Default().WritePrometheus(out);
      }
    };
    if (options.metrics_out == "-") {
      write(std::cout);
    } else {
      std::ofstream out(options.metrics_out);
      if (!out) {
        std::cerr << "cannot open '" << options.metrics_out << "'\n";
        return false;
      }
      write(out);
    }
  }
  return true;
}

// The per-phase wall-clock breakdown ("saffire.phase.seconds" spans) as
// extra numeric keys for BenchJsonReport::Add, in milliseconds. Empty
// unless phase metrics were enabled (EnableBenchObservability with
// --metrics-out) around the measured work.
inline std::vector<std::pair<std::string, double>> PhaseBreakdownMs() {
  std::vector<std::pair<std::string, double>> extra;
  for (const auto& [phase, seconds] :
       obs::MetricsRegistry::Default().Snapshot().PhaseSeconds()) {
    extra.emplace_back("phase_" + phase + "_ms", 1e3 * seconds);
  }
  return extra;
}

// Collects per-measurement timings and writes them in the subset of the
// google-benchmark JSON schema that report tooling consumes: a context
// header plus one {name, iterations, real_time, time_unit} entry per
// measurement (real_time is the per-iteration mean).
class BenchJsonReport {
 public:
  void Add(const std::string& name, double total_seconds,
           std::int64_t iterations) {
    entries_.push_back({name, total_seconds, iterations, {}});
  }

  // Entry with extra numeric keys (google-benchmark user-counter style) —
  // phase breakdowns (PhaseBreakdownMs), occupancy ratios, etc.
  void Add(const std::string& name, double total_seconds,
           std::int64_t iterations,
           std::vector<std::pair<std::string, double>> extra) {
    entries_.push_back({name, total_seconds, iterations, std::move(extra)});
  }

  // Writes options.benchmark_out if set; returns false (after printing to
  // stderr) when the file cannot be opened, so benches can fail their exit
  // code without throwing out of main.
  bool Write(const BenchOptions& options, const std::string& executable) {
    if (options.benchmark_out.empty()) return true;
    std::ofstream out(options.benchmark_out);
    if (!out) {
      std::cerr << "cannot open '" << options.benchmark_out << "'\n";
      return false;
    }
    const std::time_t now =
        std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    char date[32] = {0};
    std::tm tm_buf{};
#if defined(_WIN32)
    localtime_s(&tm_buf, &now);
#else
    localtime_r(&now, &tm_buf);
#endif
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm_buf);
    JsonWriter w(out);
    w.BeginObject();
    w.Key("context").BeginObject()
        .Key("date").String(date)
        .Key("executable").String(executable)
        .Key("num_cpus").Int(DefaultCampaignThreads())
        .Key("library_build_type").String("release")
        .EndObject();
    w.Key("benchmarks").BeginArray();
    for (const Entry& entry : entries_) {
      const double mean_ms = entry.iterations > 0
                                 ? 1e3 * entry.total_seconds /
                                       static_cast<double>(entry.iterations)
                                 : 0.0;
      w.BeginObject()
          .Key("name").String(entry.name)
          .Key("run_name").String(entry.name)
          .Key("run_type").String("iteration")
          .Key("repetitions").Int(1)
          .Key("iterations").Int(entry.iterations)
          .Key("real_time").Double(mean_ms)
          .Key("cpu_time").Double(mean_ms)
          .Key("time_unit").String("ms");
      for (const auto& [key, value] : entry.extra) {
        w.Key(key).Double(value);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out << '\n';
    return static_cast<bool>(out);
  }

 private:
  struct Entry {
    std::string name;
    double total_seconds = 0;
    std::int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> extra;
  };
  std::vector<Entry> entries_;
};

// Worker count for campaign benches: all hardware threads.
inline int BenchThreads() { return DefaultCampaignThreads(); }

// Runs every campaign of `specs` through the RunSweep facade (shared
// executor pool, one batch — workers keep their simulators across
// campaigns) and returns the per-campaign results in canonical plan order.
inline std::vector<CampaignResult> RunSweep(
    const std::vector<SweepSpec>& specs,
    std::vector<RecordSink*> extra_sinks = {}) {
  CollectorSink collector;
  std::vector<RecordSink*> sinks{&collector};
  sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
  TeeSink tee(sinks);
  saffire::RunSweep(specs, RunOptions{}, tee);
  return collector.TakeResults();
}

inline std::vector<CampaignResult> RunSweep(const SweepSpec& spec) {
  return RunSweep(std::vector<SweepSpec>{spec});
}

// Single-campaign run through the RunSweep facade.
inline CampaignResult RunCampaignForBench(const CampaignConfig& config,
                                          int threads = BenchThreads()) {
  CollectorSink collector;
  RunOptions options;
  options.max_parallelism = threads;
  saffire::RunSweep(SingleCampaignPlan(config), options, collector);
  return std::move(collector.TakeResults().front());
}

// One-line executor summary for the work done since `before` was sampled:
// how many simulators the pool built vs reused, and golden-run cache hits.
inline std::string ExecutorStatsLine(const ExecutorStats& before) {
  const ExecutorStats after = CampaignExecutor::Shared().stats();
  std::string line = "[executor] threads=";
  line += std::to_string(after.pool_threads);
  line += " campaigns=";
  line += std::to_string(after.campaigns_executed - before.campaigns_executed);
  line += " experiments=";
  line += std::to_string(after.experiments_run - before.experiments_run);
  line += " simulators: constructed=";
  line += std::to_string(after.simulators_constructed -
                         before.simulators_constructed);
  line += " reused=";
  line += std::to_string(after.simulators_reused - before.simulators_reused);
  line += " golden-cache-hits=";
  line += std::to_string(after.golden_cache_hits - before.golden_cache_hits);
  const std::int64_t batches = after.batches_run - before.batches_run;
  if (batches > 0) {
    line += " batches=";
    line += std::to_string(batches);
    line += " lanes-filled=";
    line += std::to_string(after.lanes_filled - before.lanes_filled);
  }
  return line;
}

// The evaluation platform of Table I: 16×16 INT8 systolic array.
inline AccelConfig PaperAccel() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 16 << 20;
  return config;
}

inline void PrintRule(const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    line += std::string(widths[i] + 2, '-');
    if (i + 1 < widths.size()) line += '+';
  }
  std::cout << line << '\n';
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += ' ';
    line += PadRight(cells[i], widths[i]);
    line += ' ';
    if (i + 1 < cells.size()) line += '|';
  }
  std::cout << line << '\n';
}

// Formats the non-masked class histogram as "class×count, ...".
inline std::string HistogramString(const CampaignResult& result) {
  std::vector<std::string> parts;
  for (const auto& [pattern, count] : result.Histogram()) {
    parts.push_back(ToString(pattern) + "x" + std::to_string(count));
  }
  return Join(parts, ", ");
}

inline std::string Percent(double fraction) {
  return FormatDouble(100.0 * fraction, 1) + "%";
}

}  // namespace saffire::bench
