// RQ2: how do fault patterns change with the type of operation — GEMM vs
// convolution (Sec. IV-A2)?
//
// Under WS, a GEMM fault corrupts one output-matrix column; a convolution
// fault corrupts entire output channel(s), because the lowering maps
// channel structure onto array columns. Reported per kernel from Table I,
// for both conv lowerings implemented (the shift-GEMM mapping that matches
// the paper's figures, and plain im2col for contrast).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== RQ2: operation type under WS (256-site exhaustive, SA1 "
               "bit 8) ===\n\n";
  const std::vector<std::size_t> widths = {24, 11, 42, 7};
  PrintRow({"workload", "lowering", "class histogram", "masked"}, widths);
  PrintRule(widths);

  // Contrast rows: the same kernels under the plain im2col lowering, where
  // the output-channel count alone determines the corrupted columns.
  auto conv3_im2col = Conv16Kernel3x3x3x3();
  conv3_im2col.lowering = ConvLowering::kIm2Col;
  conv3_im2col.name += "-im2col";
  auto conv8_im2col = Conv16Kernel3x3x3x8();
  conv8_im2col.lowering = ConvLowering::kIm2Col;
  conv8_im2col.name += "-im2col";

  // The workload axis is the sweep: five campaigns, one executor batch.
  SweepSpec spec;
  spec.accel = PaperAccel();
  spec.workloads = {Gemm16x16(), Conv16Kernel3x3x3x3(), Conv16Kernel3x3x3x8(),
                    conv3_im2col, conv8_im2col};
  const ExecutorStats before = CampaignExecutor::Shared().stats();
  const std::vector<CampaignResult> results = RunSweep(spec);

  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    const WorkloadSpec& workload = spec.workloads[w];
    const CampaignResult& result = results[w];
    const std::string lowering = workload.op == OpType::kConv
                                     ? ToString(workload.lowering)
                                     : std::string("-");
    PrintRow({workload.name, lowering, HistogramString(result),
              std::to_string(result.MaskedCount())},
             widths);
  }

  std::cout
      << "\nPaper: GEMM -> single-column; conv 3x3x3x3 -> single-channel "
         "(Fig. 3e);\nconv 3x3x3x8 -> multi-channel (Fig. 3f). The "
         "shift-GEMM lowering reproduces\nthat split (its 9x24 stationary "
         "matrix column-tiles on the 16-wide array);\nim2col, whose "
         "stationary matrix is only K columns wide, can never produce\n"
         "multi-channel corruption for K <= 16 — evidence the paper's "
         "platform used a\nkernel-column-interleaved weight layout.\n";
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";
  return 0;
}
