// FI cost model (google-benchmark): the per-experiment cost structure
// behind the paper's scalability discussion — each FPGA experiment took
// ~45 s for GEMM and ~130 s for convolution (≈2.9×), 49 h for the full
// campaigns, which is why application-level injection matters.
//
// We reproduce the *shape*: per-experiment simulation cost for every
// Table I workload (conv costs a small multiple of GEMM; 112×112 costs a
// large multiple of 16×16), raw datapath throughput, and the analytical
// app-level path that replaces simulation entirely.
#include <benchmark/benchmark.h>

#include "appfi/appfi.h"
#include "bench_util.h"
#include "fi/runner.h"

namespace {

using namespace saffire;
using namespace saffire::bench;

WorkloadSpec WorkloadByIndex(int index) {
  switch (index) {
    case 0:
      return Gemm16x16();
    case 1:
      return Conv16Kernel3x3x3x3();
    case 2:
      return Conv16Kernel3x3x3x8();
    case 3:
      return Gemm112x112();
    default:
      return Conv112Kernel3x3x3x8();
  }
}

Dataflow DataflowByIndex(int index) {
  return index == 0 ? Dataflow::kWeightStationary
                    : Dataflow::kOutputStationary;
}

// One complete FI experiment: faulty run + diff + classification (the
// golden run is amortized across a campaign, as in a campaign sweep).
void BM_FiExperiment(benchmark::State& state) {
  const WorkloadSpec workload =
      WorkloadByIndex(static_cast<int>(state.range(0)));
  const Dataflow dataflow =
      DataflowByIndex(static_cast<int>(state.range(1)));
  if (workload.op == OpType::kConv &&
      dataflow == Dataflow::kOutputStationary) {
    state.SkipWithError("Table I runs convolutions under WS only");
    return;
  }
  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  const RunResult golden = runner.RunGolden(workload, dataflow);
  const ClassifyContext context =
      MakeClassifyContext(workload, config, dataflow);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);

  std::uint64_t pe_steps = 0;
  for (auto _ : state) {
    const RunResult faulty = runner.RunFaulty(workload, dataflow, {&fault, 1});
    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    benchmark::DoNotOptimize(Classify(map, context));
    pe_steps += faulty.pe_steps;
  }
  state.SetLabel(workload.name + "/" + ToString(dataflow));
  state.counters["pe_steps_per_expt"] = benchmark::Counter(
      static_cast<double>(pe_steps) /
      static_cast<double>(state.iterations()));
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(golden.cycles));
}

// The same experiment on the differential engine: faulty execution
// restricted to the fault cone, outside reads replayed from the recorded
// golden trace. Contrast pe_steps_per_expt / pe_steps_skipped_per_expt with
// BM_FiExperiment to see the cone saving.
void BM_FiExperimentDifferential(benchmark::State& state) {
  const WorkloadSpec workload =
      WorkloadByIndex(static_cast<int>(state.range(0)));
  const Dataflow dataflow =
      DataflowByIndex(static_cast<int>(state.range(1)));
  if (workload.op == OpType::kConv &&
      dataflow == Dataflow::kOutputStationary) {
    state.SkipWithError("Table I runs convolutions under WS only");
    return;
  }
  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  GoldenTrace trace;
  const RunResult golden =
      runner.RunGoldenRecorded(workload, dataflow, &trace);
  const ClassifyContext context =
      MakeClassifyContext(workload, config, dataflow);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);

  std::uint64_t pe_steps = 0;
  std::uint64_t pe_steps_skipped = 0;
  for (auto _ : state) {
    const RunResult faulty =
        runner.RunFaultyDifferential(workload, dataflow, {&fault, 1}, trace);
    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    benchmark::DoNotOptimize(Classify(map, context));
    pe_steps += faulty.pe_steps;
    pe_steps_skipped += faulty.pe_steps_skipped;
  }
  state.SetLabel(workload.name + "/" + ToString(dataflow));
  state.counters["pe_steps_per_expt"] = benchmark::Counter(
      static_cast<double>(pe_steps) /
      static_cast<double>(state.iterations()));
  state.counters["pe_steps_skipped_per_expt"] = benchmark::Counter(
      static_cast<double>(pe_steps_skipped) /
      static_cast<double>(state.iterations()));
}

// The analytical app-level alternative for the same experiment.
void BM_AppFiExperiment(benchmark::State& state) {
  const WorkloadSpec workload =
      WorkloadByIndex(static_cast<int>(state.range(0)));
  const Dataflow dataflow =
      DataflowByIndex(static_cast<int>(state.range(1)));
  if (workload.op == OpType::kConv &&
      dataflow == Dataflow::kOutputStationary) {
    state.SkipWithError("Table I runs convolutions under WS only");
    return;
  }
  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  const RunResult golden = runner.RunGolden(workload, dataflow);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  AppFiSpec fi_spec;
  fi_spec.accel = config;
  fi_spec.dataflow = dataflow;
  const NetworkFi injector(fi_spec);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector.EmulateExtraction(golden.output, workload, fault));
  }
  state.SetLabel(workload.name + "/" + ToString(dataflow));
}

// Raw datapath throughput: PE evaluations per second of the cycle-accurate
// model (the quantity that fixes campaign wall-clock). range(1) selects the
// execution tier: 0 = fast-path kernel, 1 = forced reference loop — the
// recorded series behind the fast-path speedup claim.
void BM_ArrayStepThroughput(benchmark::State& state) {
  ArrayConfig config;
  SystolicArray array(config);
  const auto dataflow = DataflowByIndex(static_cast<int>(state.range(0)));
  const bool reference = state.range(1) != 0;
  array.set_force_reference_step(reference);
  for (std::int32_t r = 0; r < 16; ++r) {
    array.SetWestInput(r, 1);
  }
  for (auto _ : state) {
    array.Step(dataflow);
  }
  state.SetLabel(ToString(dataflow) +
                 (reference ? "/reference" : "/fast-path"));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * config.num_pes());
}

// A whole campaign batch through the persistent executor pool: four small
// campaigns (SA1/SA0 × bits 4/8) on a 16-site sample, one plan. The reuse
// counters show the service amortization — simulators constructed once per
// worker and then reused across every campaign in the batch.
void BM_CampaignBatch(benchmark::State& state) {
  SweepSpec spec;
  spec.accel = PaperAccel();
  spec.workloads = {Gemm16x16()};
  spec.polarities = {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0};
  spec.bits = {4, 8};
  spec.max_sites = 16;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CampaignExecutor& executor = CampaignExecutor::Shared();
  const ExecutorStats before = executor.stats();
  std::int64_t experiments = 0;
  for (auto _ : state) {
    CollectorSink collector;
    saffire::RunSweep(plan, RunOptions{}, collector);
    for (const CampaignResult& result : collector.results()) {
      experiments += static_cast<std::int64_t>(result.records.size());
    }
  }
  const ExecutorStats after = executor.stats();
  const auto iterations = static_cast<double>(state.iterations());
  state.SetLabel("campaigns=" + std::to_string(plan.campaigns.size()) +
                 "/threads=" + std::to_string(executor.threads()));
  state.counters["experiments_per_batch"] =
      benchmark::Counter(static_cast<double>(experiments) / iterations);
  state.counters["simulators_constructed"] = benchmark::Counter(
      static_cast<double>(after.simulators_constructed -
                          before.simulators_constructed));
  state.counters["simulators_reused_per_batch"] = benchmark::Counter(
      static_cast<double>(after.simulators_reused -
                          before.simulators_reused) /
      iterations);
  state.counters["golden_cache_hits_per_batch"] = benchmark::Counter(
      static_cast<double>(after.golden_cache_hits -
                          before.golden_cache_hits) /
      iterations);
}

// SIMD-kernel isolation: the lane-parallel batch replay alone (no
// classification, no campaign plumbing) on a 64-fault batch, so the scalar
// and AVX2 datapaths can be compared directly. range(0) selects the
// dataflow, range(1) the dispatched backend (0 = scalar, 1 = avx2; the
// avx2 rows are skipped on CPUs without it), and range(2) the fault cone:
// 0 = stuck-at adder faults (width-1 cones, the narrow int32 lane path),
// 1 = act-forward faults (wide cones, always on the generic path — the
// SIMD-invariant control).
void BM_BatchLaneKernel(benchmark::State& state) {
  const Dataflow dataflow = DataflowByIndex(static_cast<int>(state.range(0)));
  const SimdMode mode =
      state.range(1) != 0 ? SimdMode::kAvx2 : SimdMode::kScalar;
  if (mode == SimdMode::kAvx2 && !CpuSupportsAvx2()) {
    state.SkipWithError("CPU lacks AVX2");
    return;
  }
  const bool wide = state.range(2) != 0;
  SetSimdMode(mode);

  const WorkloadSpec workload = Gemm16x16();
  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  GoldenTrace trace;
  const RunResult golden =
      runner.RunGoldenRecorded(workload, dataflow, &trace);
  std::vector<FaultSpec> faults;
  for (std::int32_t r = 0; r < 16; ++r) {
    for (std::int32_t c = 0; c < 4; ++c) {
      FaultSpec fault = StuckAtAdder(PeCoord{r, c}, 8, StuckPolarity::kStuckAt1);
      if (wide) {
        fault.signal = MacSignal::kActForward;
        fault.bit = 3;
      }
      faults.push_back(fault);
    }
  }

  std::uint64_t pe_steps = 0;
  for (auto _ : state) {
    const std::vector<RunResult> results =
        runner.RunFaultyBatch(workload, dataflow, faults, trace, golden);
    benchmark::DoNotOptimize(results.data());
    for (const RunResult& result : results) pe_steps += result.pe_steps;
  }
  SetSimdMode(SimdMode::kAuto);
  state.SetLabel(ToString(dataflow) + "/" + ToString(mode) +
                 (wide ? "/wide-cone" : "/narrow-cone"));
  state.counters["lanes_per_batch"] =
      benchmark::Counter(static_cast<double>(faults.size()));
  state.counters["pe_steps_per_batch"] = benchmark::Counter(
      static_cast<double>(pe_steps) /
      static_cast<double>(state.iterations()));
}

// The closed-form predicted engine on the same 64-fault batch: what the
// campaign layer's kPredicted rung pays when the predictor is exact.
void BM_PredictedKernel(benchmark::State& state) {
  const Dataflow dataflow = DataflowByIndex(static_cast<int>(state.range(0)));
  const WorkloadSpec workload = Gemm16x16();
  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  GoldenTrace trace;
  const RunResult golden =
      runner.RunGoldenRecorded(workload, dataflow, &trace);
  std::vector<FaultSpec> faults;
  for (std::int32_t r = 0; r < 16; ++r) {
    for (std::int32_t c = 0; c < 4; ++c) {
      faults.push_back(
          StuckAtAdder(PeCoord{r, c}, 8, StuckPolarity::kStuckAt1));
    }
  }
  for (auto _ : state) {
    const std::vector<RunResult> results =
        runner.RunFaultyPredicted(workload, dataflow, faults, trace, golden);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetLabel(ToString(dataflow) + "/closed-form");
  state.counters["lanes_per_batch"] =
      benchmark::Counter(static_cast<double>(faults.size()));
}

// Same, with a fault hook installed on one PE (the campaign configuration).
void BM_ArrayStepWithHook(benchmark::State& state) {
  ArrayConfig config;
  SystolicArray array(config);
  FaultInjector injector(
      {StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1)}, config);
  array.InstallFaultHook(&injector);
  for (auto _ : state) {
    array.Step(Dataflow::kWeightStationary);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * config.num_pes());
}

}  // namespace

// Convolutions run under WS only, matching Table I.
BENCHMARK(BM_FiExperiment)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FiExperimentDifferential)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AppFiExperiment)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ArrayStepThroughput)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});
BENCHMARK(BM_BatchLaneKernel)
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictedKernel)
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArrayStepWithHook);
BENCHMARK(BM_CampaignBatch)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
