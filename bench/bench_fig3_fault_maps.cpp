// Figure 3 reproduction: regenerates each of the seven fault-map panels
// and checks the observed pattern class against the paper's caption.
#include <iostream>

#include "bench_util.h"
#include "fi/runner.h"
#include "patterns/report.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  struct Panel {
    const char* id;
    const char* caption;
    WorkloadSpec workload;
    Dataflow dataflow;
    PeCoord site;
    PatternClass expected;
  };
  const Panel panels[] = {
      {"3a", "(GEMM, WS, 16x16)", Gemm16x16(), Dataflow::kWeightStationary,
       PeCoord{4, 9}, PatternClass::kSingleColumn},
      {"3b", "(GEMM, OS, 16x16)", Gemm16x16(), Dataflow::kOutputStationary,
       PeCoord{4, 9}, PatternClass::kSingleElement},
      {"3c", "(GEMM, WS, 112x112)", Gemm112x112(),
       Dataflow::kWeightStationary, PeCoord{4, 9},
       PatternClass::kSingleColumnMultiTile},
      {"3d", "(GEMM, OS, 112x112)", Gemm112x112(),
       Dataflow::kOutputStationary, PeCoord{4, 9},
       PatternClass::kSingleElementMultiTile},
      {"3e", "(Conv, WS, 16x16 input, 3x3x3x3)", Conv16Kernel3x3x3x3(),
       Dataflow::kWeightStationary, PeCoord{4, 4},
       PatternClass::kSingleChannel},
      {"3f", "(Conv, WS, 16x16 input, 3x3x3x8)", Conv16Kernel3x3x3x8(),
       Dataflow::kWeightStationary, PeCoord{4, 4},
       PatternClass::kMultiChannel},
      {"3g", "(Conv, WS, 112x112 input, 3x3x3x8)", Conv112Kernel3x3x3x8(),
       Dataflow::kWeightStationary, PeCoord{4, 4},
       PatternClass::kMultiChannel},
  };

  const AccelConfig config = PaperAccel();
  FiRunner runner(config);
  int matches = 0;
  for (const Panel& panel : panels) {
    const FaultSpec fault =
        StuckAtAdder(panel.site, 8, StuckPolarity::kStuckAt1);
    const RunResult golden = runner.RunGolden(panel.workload, panel.dataflow);
    const RunResult faulty =
        runner.RunFaulty(panel.workload, panel.dataflow, {&fault, 1});
    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    const ClassifyContext context =
        MakeClassifyContext(panel.workload, config, panel.dataflow);
    const PatternClass observed = Classify(map, context);
    const bool match = observed == panel.expected;
    matches += match ? 1 : 0;

    std::cout << "=== Fig. " << panel.id << " " << panel.caption << " ===\n"
              << "fault: " << fault.ToString() << "\n"
              << "paper class: " << ToString(panel.expected)
              << " | observed: " << ToString(observed) << " ["
              << (match ? "MATCH" : "DEVIATION") << "]\n"
              << map.count() << " corrupted elements, |delta| in ["
              << map.min_abs_delta << ", " << map.max_abs_delta << "]\n"
              << RenderCorruptionMap(map, context, 20);
    if (panel.workload.op == OpType::kConv) {
      std::cout << "output-channel view:\n"
                << RenderConvChannelMap(map, context, 6);
    }
    std::cout << "\n";
  }
  std::cout << "panels matching the paper's class: " << matches << "/7\n";
  return 0;
}
