// The "six well-defined classes" claim (Sec. IV, Discussion): across the
// whole configuration matrix, every observed fault pattern falls into one
// of the paper's classes; within a configuration the class is the same for
// every (non-masked) MAC unit.
//
// This sweep broadens the paper's campaigns along the fault-model axes it
// held fixed: both stuck-at polarities and several bit positions. Large
// workloads sample 64 sites to keep the sweep under a minute; the small
// ones stay exhaustive.
#include <iostream>
#include <map>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Classification sweep: workloads x dataflow x polarity x "
               "bit ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 4, 4, 40, 7};
  PrintRow({"workload", "DF", "pol", "bit", "class histogram", "1-class"},
           widths);
  PrintRule(widths);

  std::map<PatternClass, std::int64_t> global_histogram;
  std::int64_t experiments = 0;
  std::int64_t other_class = 0;

  struct Case {
    WorkloadSpec workload;
    Dataflow dataflow;
    std::int64_t sites;  // 0 = exhaustive
  };
  const Case cases[] = {
      {Gemm16x16(), Dataflow::kWeightStationary, 0},
      {Gemm16x16(), Dataflow::kOutputStationary, 0},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary, 0},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary, 0},
      {Gemm112x112(), Dataflow::kWeightStationary, 32},
      {Gemm112x112(), Dataflow::kOutputStationary, 32},
      {Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary, 32},
  };

  for (const Case& sweep_case : cases) {
    const std::vector<int> bits = sweep_case.sites == 0
                                      ? std::vector<int>{4, 8, 20, 31}
                                      : std::vector<int>{8, 31};
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0}) {
      for (const int bit : bits) {
        CampaignConfig config;
        config.accel = PaperAccel();
        config.workload = sweep_case.workload;
        config.dataflow = sweep_case.dataflow;
        config.bit = bit;
        config.polarity = polarity;
        config.max_sites = sweep_case.sites;
        const CampaignResult result = RunCampaignParallel(config, bench::BenchThreads());

        for (const auto& [pattern, count] : result.Histogram()) {
          global_histogram[pattern] += count;
          if (pattern == PatternClass::kOther) other_class += count;
        }
        experiments += static_cast<std::int64_t>(result.records.size());

        PrintRow({sweep_case.workload.name, ToString(sweep_case.dataflow),
                  ToString(polarity), std::to_string(bit),
                  HistogramString(result),
                  result.SingleClassProperty() ? "yes" : "no"},
                 widths);
      }
    }
  }

  std::cout << "\n=== aggregate over " << experiments << " experiments ===\n";
  for (const auto& [pattern, count] : global_histogram) {
    std::cout << "  " << PadRight(ToString(pattern), 28)
              << PadLeft(std::to_string(count), 7) << "\n";
  }
  std::cout << "\nunclassifiable ('other') experiments: " << other_class
            << " — the paper's claim that stuck-at patterns are "
               "well-defined holds when every\nobservation lands in a named "
               "class or is masked.\n"
            << "Sites are masked when the stuck value equals the bit the "
               "datapath already\ncarries (e.g. SA0 on a bit the all-ones "
               "partial sums never set) or when the\nfaulty column lies "
               "outside the operand footprint.\n";
  return 0;
}
