// The "six well-defined classes" claim (Sec. IV, Discussion): across the
// whole configuration matrix, every observed fault pattern falls into one
// of the paper's classes; within a configuration the class is the same for
// every (non-masked) MAC unit.
//
// This sweep broadens the paper's campaigns along the fault-model axes it
// held fixed: both stuck-at polarities and several bit positions. Large
// workloads sample 64 sites to keep the sweep under a minute; the small
// ones stay exhaustive.
//
// The whole matrix is one CampaignPlan executed as a single batch through
// the shared pool, so workers keep their simulators warm across campaigns
// instead of rebuilding one per campaign.
#include <iostream>
#include <map>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Classification sweep: workloads x dataflow x polarity x "
               "bit ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 4, 4, 40, 7};
  PrintRow({"workload", "DF", "pol", "bit", "class histogram", "1-class"},
           widths);
  PrintRule(widths);

  struct Case {
    WorkloadSpec workload;
    Dataflow dataflow;
    std::int64_t sites;  // 0 = exhaustive
  };
  const Case cases[] = {
      {Gemm16x16(), Dataflow::kWeightStationary, 0},
      {Gemm16x16(), Dataflow::kOutputStationary, 0},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary, 0},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary, 0},
      {Gemm112x112(), Dataflow::kWeightStationary, 32},
      {Gemm112x112(), Dataflow::kOutputStationary, 32},
      {Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary, 32},
  };

  // One spec per case; the polarity × bit product expands inside the spec
  // (bit is the innermost plan axis, matching the row order below).
  std::vector<SweepSpec> specs;
  for (const Case& sweep_case : cases) {
    SweepSpec spec;
    spec.accel = PaperAccel();
    spec.workloads = {sweep_case.workload};
    spec.dataflows = {sweep_case.dataflow};
    spec.polarities = {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0};
    spec.bits = sweep_case.sites == 0 ? std::vector<int>{4, 8, 20, 31}
                                      : std::vector<int>{8, 31};
    spec.max_sites = sweep_case.sites;
    specs.push_back(std::move(spec));
  }

  const ExecutorStats before = CampaignExecutor::Shared().stats();
  const std::vector<CampaignResult> results = RunSweep(specs);

  std::map<PatternClass, std::int64_t> global_histogram;
  std::int64_t experiments = 0;
  std::int64_t other_class = 0;

  std::size_t next = 0;
  for (const Case& sweep_case : cases) {
    const std::vector<int> bits = sweep_case.sites == 0
                                      ? std::vector<int>{4, 8, 20, 31}
                                      : std::vector<int>{8, 31};
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0}) {
      for (const int bit : bits) {
        const CampaignResult& result = results[next++];

        for (const auto& [pattern, count] : result.Histogram()) {
          global_histogram[pattern] += count;
          if (pattern == PatternClass::kOther) other_class += count;
        }
        experiments += static_cast<std::int64_t>(result.records.size());

        PrintRow({sweep_case.workload.name, ToString(sweep_case.dataflow),
                  ToString(polarity), std::to_string(bit),
                  HistogramString(result),
                  result.SingleClassProperty() ? "yes" : "no"},
                 widths);
      }
    }
  }

  std::cout << "\n=== aggregate over " << experiments << " experiments ===\n";
  for (const auto& [pattern, count] : global_histogram) {
    std::cout << "  " << PadRight(ToString(pattern), 28)
              << PadLeft(std::to_string(count), 7) << "\n";
  }
  std::cout << "\nunclassifiable ('other') experiments: " << other_class
            << " — the paper's claim that stuck-at patterns are "
               "well-defined holds when every\nobservation lands in a named "
               "class or is masked.\n"
            << "Sites are masked when the stuck value equals the bit the "
               "datapath already\ncarries (e.g. SA0 on a bit the all-ones "
               "partial sums never set) or when the\nfaulty column lies "
               "outside the operand footprint.\n";
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";
  return 0;
}
