// Weight double-buffering ablation: Gemmini's PEs hold two weight banks so
// the next PRELOAD shifts in behind the current COMPUTE's stream. This
// ablation measures what that architectural choice is worth per Table I
// workload — and confirms it changes only *cycles*, never fault patterns
// (the fault model lives on the compute datapath, not the load path).
#include <iostream>

#include "bench_util.h"
#include "fi/runner.h"
#include "patterns/classify.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Weight double-buffering: cycles per golden run (WS) "
               "===\n\n";
  const std::vector<std::size_t> widths = {24, 13, 13, 9, 15};
  PrintRow({"workload", "single-bank", "double-buf", "saved", "same pattern"},
           widths);
  PrintRule(widths);

  for (const WorkloadSpec& workload :
       {Gemm16x16(), Gemm112x112(), Conv16Kernel3x3x3x3(),
        Conv16Kernel3x3x3x8(), Conv112Kernel3x3x3x8()}) {
    AccelConfig buffered = PaperAccel();
    buffered.double_buffered_weights = true;
    AccelConfig single = PaperAccel();
    single.double_buffered_weights = false;

    FiRunner buffered_runner(buffered);
    FiRunner single_runner(single);
    const auto buffered_golden =
        buffered_runner.RunGolden(workload, Dataflow::kWeightStationary);
    const auto single_golden =
        single_runner.RunGolden(workload, Dataflow::kWeightStationary);

    // The fault pattern must be identical under both memories: inject the
    // same fault on both and compare corruption coordinate sets.
    const FaultSpec fault =
        StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
    const auto buffered_map = ExtractCorruption(
        buffered_golden.output,
        buffered_runner.RunFaulty(workload, Dataflow::kWeightStationary,
                                  {&fault, 1})
            .output);
    const auto single_map = ExtractCorruption(
        single_golden.output,
        single_runner.RunFaulty(workload, Dataflow::kWeightStationary,
                                {&fault, 1})
            .output);
    const bool same_pattern = buffered_map.corrupted == single_map.corrupted;

    const double saved =
        1.0 - static_cast<double>(buffered_golden.cycles) /
                  static_cast<double>(single_golden.cycles);
    PrintRow({workload.name, std::to_string(single_golden.cycles),
              std::to_string(buffered_golden.cycles), Percent(saved),
              same_pattern ? "yes" : "NO (bug)"},
             widths);
  }

  std::cout
      << "\nDouble buffering hides every preload behind the previous "
         "compute's stream\n(savings grow with the number of tiles); "
         "because the banked register is on the\nload path — outside the "
         "paper's fault model — the fault patterns are untouched.\n";
  return 0;
}
