// Network-campaign cost model (google-benchmark): the two execution rungs
// of RunNetworkSweep on the same sweep, so the BENCH_dnn_campaign.json
// artifact records the application-level speedup directly — the network
// version of the paper's scalability argument (45 s per FPGA experiment vs
// an analytical perturbation).
//
// Before the timed benchmarks, a warm-up sweep prints the per-pattern-class
// SDC and ABFT-coverage tables plus an explicit appfi-vs-cycle-accurate
// speedup line (the ≥10x gate the fast rung is contracted to clear).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <iomanip>
#include <iostream>

#include "service/network_run.h"

namespace {

using namespace saffire;

AccelConfig PaperScaleAccel() {
  AccelConfig config;  // 16×16 array, the paper's configuration
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

// Multi-tile extraction workload: big enough that the cycle-accurate rung
// pays real simulation, small enough for a bench iteration.
NetworkSweepSpec ExtractionSpec() {
  NetworkSweepSpec spec;
  spec.accel = PaperScaleAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 32;
  spec.network.extraction_k = 32;
  spec.network.extraction_n = 32;
  spec.max_sites = 8;
  return spec;
}

// Tiny trained MLP: the accuracy-degradation shape (training dominates the
// prepare step and is paid identically on both rungs).
NetworkSweepSpec MlpSpec() {
  NetworkSweepSpec spec;
  spec.accel = PaperScaleAccel();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.batch = 16;
  spec.network.hidden = 16;
  spec.network.train_samples = 120;
  spec.network.train_epochs = 10;
  spec.network.train_target = 0.8;
  spec.max_sites = 4;
  return spec;
}

NetworkSweepSpec SpecByIndex(int index) {
  return index == 0 ? ExtractionSpec() : MlpSpec();
}

void BM_NetworkSweep(benchmark::State& state) {
  NetworkSweepSpec spec = SpecByIndex(static_cast<int>(state.range(0)));
  spec.rung = state.range(1) != 0 ? NetworkRung::kCycleAccurate
                                  : NetworkRung::kAppFi;
  spec.abft = state.range(2) != 0;
  std::int64_t records = 0;
  std::int64_t sdc = 0;
  for (auto _ : state) {
    NetworkCollectorSink sink;
    const SweepOutcome outcome = RunNetworkSweep(spec, sink);
    benchmark::DoNotOptimize(sink.records.data());
    records += outcome.records;
    for (const NetworkRecord& record : sink.records) {
      if (record.sdc) ++sdc;
    }
  }
  state.SetLabel(ToString(spec.network.kind) + "/" + ToString(spec.rung) +
                 (spec.abft ? "/abft" : ""));
  const auto iterations = static_cast<double>(state.iterations());
  state.counters["experiments_per_sweep"] =
      benchmark::Counter(static_cast<double>(records) / iterations);
  state.counters["sdc_per_sweep"] =
      benchmark::Counter(static_cast<double>(sdc) / iterations);
}

// One sweep per rung, timed with a wall clock, for the explicit speedup
// line and the per-class tables — runs once before the measured benchmarks.
void PrintSummaryTables() {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.abft = true;

  std::array<std::int64_t, kNumPatternClasses> experiments{};
  std::array<std::int64_t, kNumPatternClasses> sdc{};
  std::array<std::int64_t, kNumPatternClasses> detected{};
  std::array<std::int64_t, kNumPatternClasses> corrected{};

  const auto sweep = [&](NetworkRung rung, bool tally) {
    spec.rung = rung;
    NetworkCollectorSink sink;
    const auto start = std::chrono::steady_clock::now();
    RunNetworkSweep(spec, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (tally) {
      for (const NetworkRecord& record : sink.records) {
        const auto cls = static_cast<std::size_t>(record.pattern);
        ++experiments[cls];
        if (record.sdc) ++sdc[cls];
        if (record.abft_diagnosis != AbftDiagnosis::kClean) ++detected[cls];
        if (record.abft_corrected) ++corrected[cls];
      }
    }
    return std::chrono::duration<double, std::micro>(elapsed).count();
  };

  // Warm both paths once (model prep, metric registration), then time.
  sweep(NetworkRung::kAppFi, /*tally=*/true);
  const double appfi_us = sweep(NetworkRung::kAppFi, /*tally=*/false);
  const double cycle_us = sweep(NetworkRung::kCycleAccurate, false);

  std::cout << "=== Network campaign: " << ToString(spec.network.kind)
            << ", stuck-at adder sweep, ABFT on ===\n\n";
  std::cout << std::left << std::setw(26) << "pattern class" << std::right
            << std::setw(8) << "expts" << std::setw(8) << "SDC"
            << std::setw(10) << "detected" << std::setw(11) << "corrected"
            << "\n";
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    if (experiments[i] == 0) continue;
    std::cout << std::left << std::setw(26)
              << ToString(static_cast<PatternClass>(i)) << std::right
              << std::setw(8) << experiments[i] << std::setw(8) << sdc[i]
              << std::setw(10) << detected[i] << std::setw(11)
              << corrected[i] << "\n";
  }
  std::cout << "\nappfi rung:          " << std::fixed
            << std::setprecision(0) << appfi_us << " us/sweep\n"
            << "cycle-accurate rung: " << cycle_us << " us/sweep\n"
            << "speedup:             " << std::setprecision(1)
            << cycle_us / appfi_us << "x (gate: >= 10x)\n\n";
}

}  // namespace

// Rungs: {spec, rung, abft}. Convolutional networks and the forwarding
// signals stay on the cycle-accurate rung (predictor coverage).
BENCHMARK(BM_NetworkSweep)
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  PrintSummaryTables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
