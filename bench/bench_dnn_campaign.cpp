// Network-campaign cost model (google-benchmark): the two execution rungs
// of RunNetworkSweep on the same sweep, so the BENCH_dnn_campaign.json
// artifact records the application-level speedup directly — the network
// version of the paper's scalability argument (45 s per FPGA experiment vs
// an analytical perturbation).
//
// Before the timed benchmarks, a warm-up sweep prints the per-pattern-class
// SDC and ABFT-coverage tables plus an explicit appfi-vs-cycle-accurate
// speedup line (the ≥10x gate the fast rung is contracted to clear).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <iomanip>
#include <iostream>

#include "service/network_run.h"

namespace {

using namespace saffire;

AccelConfig PaperScaleAccel() {
  AccelConfig config;  // 16×16 array, the paper's configuration
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

// Multi-tile extraction workload: big enough that the cycle-accurate rung
// pays real simulation, small enough for a bench iteration.
NetworkSweepSpec ExtractionSpec() {
  NetworkSweepSpec spec;
  spec.accel = PaperScaleAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 32;
  spec.network.extraction_k = 32;
  spec.network.extraction_n = 32;
  spec.max_sites = 8;
  return spec;
}

// Tiny trained MLP: the accuracy-degradation shape (training dominates the
// prepare step and is paid identically on both rungs).
NetworkSweepSpec MlpSpec() {
  NetworkSweepSpec spec;
  spec.accel = PaperScaleAccel();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.batch = 16;
  spec.network.hidden = 16;
  spec.network.train_samples = 120;
  spec.network.train_epochs = 10;
  spec.network.train_target = 0.8;
  spec.max_sites = 4;
  return spec;
}

NetworkSweepSpec SpecByIndex(int index) {
  return index == 0 ? ExtractionSpec() : MlpSpec();
}

// Graceful-degradation shape: a harder-trained MLP with a high-magnitude
// stuck bit pinned to the hidden layer, so the per-policy recovered-accuracy
// counters measure real damage (the EXPERIMENTS.md recovery recipe at bench
// scale). One spec for every policy keeps the campaigns comparable.
NetworkSweepSpec MitigationSpec() {
  NetworkSweepSpec spec;
  spec.accel = PaperScaleAccel();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.batch = 16;
  spec.network.hidden = 8;
  spec.network.train_samples = 300;
  spec.network.train_epochs = 40;
  spec.bits = {24};
  spec.layers = {0};
  spec.max_sites = 4;
  return spec;
}

// One timed arm per mitigation policy (the BENCH_mitigation.json series):
// wall time is the cost of the baseline+mitigated pair, and the counters
// carry the accuracy story — top-1 lost to the fault, top-1 recovered by
// the policy, and residual SDC after mitigation.
void BM_MitigatedNetworkSweep(benchmark::State& state) {
  NetworkSweepSpec spec = MitigationSpec();
  const auto policy = static_cast<MitigationPolicy>(state.range(0));
  spec.mitigations = {policy};
  std::int64_t golden = 0;
  std::int64_t base = 0;
  std::int64_t mitigated = 0;
  std::int64_t residual_sdc = 0;
  for (auto _ : state) {
    NetworkCollectorSink sink;
    RunNetworkSweep(spec, sink);
    benchmark::DoNotOptimize(sink.records.data());
    for (const NetworkRecord& record : sink.records) {
      golden += record.correct_golden;
      base += record.correct_faulty;
      // kNone records keep the -1 sentinel: nothing mitigated, no recovery.
      mitigated += record.mit_correct_faulty >= 0 ? record.mit_correct_faulty
                                                  : record.correct_faulty;
      if (record.mit_sdc) ++residual_sdc;
    }
  }
  state.SetLabel("mlp/" + ToString(policy));
  const auto iterations = static_cast<double>(state.iterations());
  state.counters["lost_top1_per_sweep"] =
      benchmark::Counter(static_cast<double>(golden - base) / iterations);
  state.counters["recovered_top1_per_sweep"] =
      benchmark::Counter(static_cast<double>(mitigated - base) / iterations);
  state.counters["residual_sdc_per_sweep"] =
      benchmark::Counter(static_cast<double>(residual_sdc) / iterations);
}

void BM_NetworkSweep(benchmark::State& state) {
  NetworkSweepSpec spec = SpecByIndex(static_cast<int>(state.range(0)));
  spec.rung = state.range(1) != 0 ? NetworkRung::kCycleAccurate
                                  : NetworkRung::kAppFi;
  spec.abft = state.range(2) != 0;
  std::int64_t records = 0;
  std::int64_t sdc = 0;
  for (auto _ : state) {
    NetworkCollectorSink sink;
    const SweepOutcome outcome = RunNetworkSweep(spec, sink);
    benchmark::DoNotOptimize(sink.records.data());
    records += outcome.records;
    for (const NetworkRecord& record : sink.records) {
      if (record.sdc) ++sdc;
    }
  }
  state.SetLabel(ToString(spec.network.kind) + "/" + ToString(spec.rung) +
                 (spec.abft ? "/abft" : ""));
  const auto iterations = static_cast<double>(state.iterations());
  state.counters["experiments_per_sweep"] =
      benchmark::Counter(static_cast<double>(records) / iterations);
  state.counters["sdc_per_sweep"] =
      benchmark::Counter(static_cast<double>(sdc) / iterations);
}

// One sweep per rung, timed with a wall clock, for the explicit speedup
// line and the per-class tables — runs once before the measured benchmarks.
void PrintSummaryTables() {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.abft = true;

  std::array<std::int64_t, kNumPatternClasses> experiments{};
  std::array<std::int64_t, kNumPatternClasses> sdc{};
  std::array<std::int64_t, kNumPatternClasses> detected{};
  std::array<std::int64_t, kNumPatternClasses> corrected{};

  const auto sweep = [&](NetworkRung rung, bool tally) {
    spec.rung = rung;
    NetworkCollectorSink sink;
    const auto start = std::chrono::steady_clock::now();
    RunNetworkSweep(spec, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (tally) {
      for (const NetworkRecord& record : sink.records) {
        const auto cls = static_cast<std::size_t>(record.pattern);
        ++experiments[cls];
        if (record.sdc) ++sdc[cls];
        if (record.abft_diagnosis != AbftDiagnosis::kClean) ++detected[cls];
        if (record.abft_corrected) ++corrected[cls];
      }
    }
    return std::chrono::duration<double, std::micro>(elapsed).count();
  };

  // Warm both paths once (model prep, metric registration), then time.
  sweep(NetworkRung::kAppFi, /*tally=*/true);
  const double appfi_us = sweep(NetworkRung::kAppFi, /*tally=*/false);
  const double cycle_us = sweep(NetworkRung::kCycleAccurate, false);

  std::cout << "=== Network campaign: " << ToString(spec.network.kind)
            << ", stuck-at adder sweep, ABFT on ===\n\n";
  std::cout << std::left << std::setw(26) << "pattern class" << std::right
            << std::setw(8) << "expts" << std::setw(8) << "SDC"
            << std::setw(10) << "detected" << std::setw(11) << "corrected"
            << "\n";
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    if (experiments[i] == 0) continue;
    std::cout << std::left << std::setw(26)
              << ToString(static_cast<PatternClass>(i)) << std::right
              << std::setw(8) << experiments[i] << std::setw(8) << sdc[i]
              << std::setw(10) << detected[i] << std::setw(11)
              << corrected[i] << "\n";
  }
  std::cout << "\nappfi rung:          " << std::fixed
            << std::setprecision(0) << appfi_us << " us/sweep\n"
            << "cycle-accurate rung: " << cycle_us << " us/sweep\n"
            << "speedup:             " << std::setprecision(1)
            << cycle_us / appfi_us << "x (gate: >= 10x)\n\n";
}

// Per-policy recovery table, printed once before the measured benchmarks:
// a single sweep with every policy enabled, tallied by campaign. The same
// numbers the BM_MitigatedNetworkSweep counters record, but side by side.
void PrintMitigationTable() {
  NetworkSweepSpec spec = MitigationSpec();
  spec.mitigations.clear();
  for (int p = 0; p < kNumMitigationPolicies; ++p) {
    spec.mitigations.push_back(static_cast<MitigationPolicy>(p));
  }
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  NetworkCollectorSink sink;
  RunNetworkSweep(spec, sink);

  struct Tally {
    std::int64_t experiments = 0;
    std::int64_t golden = 0;
    std::int64_t base = 0;
    std::int64_t mitigated = 0;
    std::int64_t residual_sdc = 0;
  };
  std::array<Tally, kNumMitigationPolicies> tallies{};
  for (const NetworkRecord& record : sink.records) {
    const auto policy = static_cast<std::size_t>(
        plan.campaigns[record.campaign_index].mitigation);
    Tally& tally = tallies[policy];
    ++tally.experiments;
    tally.golden += record.correct_golden;
    tally.base += record.correct_faulty;
    tally.mitigated += record.mit_correct_faulty >= 0
                           ? record.mit_correct_faulty
                           : record.correct_faulty;
    if (record.mit_sdc) ++tally.residual_sdc;
  }

  std::cout << "=== Graceful degradation: mlp, SA1 bit 24, hidden layer, "
            << spec.max_sites << " sites ===\n\n";
  std::cout << std::left << std::setw(16) << "policy" << std::right
            << std::setw(7) << "expts" << std::setw(8) << "golden"
            << std::setw(8) << "faulty" << std::setw(11) << "mitigated"
            << std::setw(11) << "recovered" << std::setw(10) << "res.SDC"
            << "\n";
  for (int p = 0; p < kNumMitigationPolicies; ++p) {
    const Tally& tally = tallies[static_cast<std::size_t>(p)];
    std::cout << std::left << std::setw(16)
              << ToString(static_cast<MitigationPolicy>(p)) << std::right
              << std::setw(7) << tally.experiments << std::setw(8)
              << tally.golden << std::setw(8) << tally.base << std::setw(11)
              << tally.mitigated << std::setw(11)
              << (tally.mitigated - tally.base) << std::setw(10)
              << tally.residual_sdc << "\n";
  }
  std::cout << "\n";
}

}  // namespace

// Rungs: {spec, rung, abft}. Convolutional networks and the forwarding
// signals stay on the cycle-accurate rung (predictor coverage).
BENCHMARK(BM_NetworkSweep)
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Unit(benchmark::kMillisecond);

// One arm per policy on the appfi rung (run_benchmarks.sh filters these
// into BENCH_mitigation.json; the rung-speedup story stays above).
BENCHMARK(BM_MitigatedNetworkSweep)
    ->DenseRange(0, kNumMitigationPolicies - 1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  PrintSummaryTables();
  PrintMitigationTable();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
