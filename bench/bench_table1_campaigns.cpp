// Table I reproduction: the full campaign matrix of the paper's
// evaluation. One row per (workload, dataflow) configuration with an
// exhaustive 256-site stuck-at campaign (Sec. III-B), reporting the
// dominant fault-pattern class, the masked-site count, the single-class
// property, and predictor agreement.
//
// Paper reference points:
//   RQ1 rows: GEMM 16×16 under OS vs WS (Fig. 3a/3b).
//   RQ2 rows: GEMM vs conv kernels 3×3×3×3 and 3×3×3×8 under WS.
//   RQ3 rows: 16×16 vs 112×112 operand sizes.
//
// The matrix runs as one CampaignPlan batch through the shared executor.
// The trailing engine-comparison section re-runs the 16×16 WS GEMM campaign
// under all five execution engines (reference / full / differential /
// batch / predicted) and checks their results are bit-identical, recording
// the PE-step saving and the batch and predicted engines' speedups over
// differential; those run as separate plans so each engine gets its own
// wall clock.
//
// Flags (bench_util.h ParseBenchArgs):
//   --engine NAME             run the matrix under this engine (default
//                             differential) and skip the engine comparison
//   --simd {auto|avx2|scalar} SIMD backend for the batch datapath (auto)
//   --records-csv PATH        stream every matrix record to a CSV — CI
//                             diffs this file across engines
//   --benchmark_out PATH      google-benchmark-compatible JSON timings
//   --benchmark_out_format F  only "json"
//   --benchmark_min_time T    repeat each measurement until T seconds have
//                             elapsed; any non-zero value also selects the
//                             smoke matrix (the 16×16 rows only) so CI runs
//                             stay fast
//   --trace-out PATH          Chrome trace_event JSON of the measured work
//   --metrics-out PATH        metrics exposition after the run ('-'=stdout);
//                             also adds phase_*_ms keys to --benchmark_out
//   --metrics-format F        prom (default) or json
// Enabling --trace-out/--metrics-out perturbs the measured times; the CI
// regression gate runs without them and a second run records the artifacts.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace saffire;
  using namespace saffire::bench;

  BenchOptions options;
  try {
    options = ParseBenchArgs(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  const CampaignEngine matrix_engine =
      options.engine.empty() ? CampaignEngine::kDifferential
                             : ParseCampaignEngine(options.engine);
  const bool smoke = options.min_time > 0;
  EnableBenchObservability(options);
  BenchJsonReport report;
  const auto seconds_since = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  struct Row {
    const char* rq;
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  std::vector<Row> rows = {
      {"RQ1", Gemm16x16(), Dataflow::kWeightStationary},
      {"RQ1", Gemm16x16(), Dataflow::kOutputStationary},
      {"RQ2", Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary},
      {"RQ2", Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };
  if (!smoke) {
    rows.push_back({"RQ3", Gemm112x112(), Dataflow::kWeightStationary});
    rows.push_back({"RQ3", Gemm112x112(), Dataflow::kOutputStationary});
    rows.push_back({"RQ3", Conv112Kernel3x3x3x8(),
                    Dataflow::kWeightStationary});
  }

  std::cout << "=== Table I campaign matrix: exhaustive 256-site stuck-at "
               "campaigns (SA1, adder_out bit 8, "
            << ToString(matrix_engine) << " engine"
            << (smoke ? ", smoke" : "") << ") ===\n\n";
  const std::vector<std::size_t> widths = {4, 22, 3, 26, 7, 13, 10, 10};
  PrintRow({"RQ", "workload", "DF", "dominant class", "masked",
            "single-class", "cls-agree", "exact"},
           widths);
  PrintRule(widths);

  std::vector<SweepSpec> specs;
  for (const Row& row : rows) {
    SweepSpec spec;
    spec.accel = PaperAccel();
    spec.workloads = {row.workload};
    spec.dataflows = {row.dataflow};
    spec.engine = matrix_engine;
    specs.push_back(std::move(spec));
  }
  const ExecutorStats before = CampaignExecutor::Shared().stats();

  // First iteration streams the record CSV; timing repetitions (to reach
  // --benchmark_min_time) rerun the sweep without re-writing it.
  std::ofstream csv_out;
  std::unique_ptr<CsvRecordSink> csv_sink;
  std::vector<RecordSink*> extra_sinks;
  if (!options.records_csv.empty()) {
    csv_out.open(options.records_csv);
    if (!csv_out) {
      std::cerr << "cannot open '" << options.records_csv << "'\n";
      return 1;
    }
    csv_sink = std::make_unique<CsvRecordSink>(csv_out);
    extra_sinks.push_back(csv_sink.get());
  }
  const auto matrix_start = std::chrono::steady_clock::now();
  const std::vector<CampaignResult> results = RunSweep(specs, extra_sinks);
  std::int64_t matrix_iterations = 1;
  while (seconds_since(matrix_start) < options.min_time) {
    RunSweep(specs);
    ++matrix_iterations;
  }
  // Phase keys cover every iteration of the matrix sweep (cumulative span
  // time), alongside the per-iteration real_time mean.
  report.Add("table1_matrix/" + ToString(matrix_engine),
             seconds_since(matrix_start), matrix_iterations,
             PhaseBreakdownMs());

  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    const CampaignResult& result = results[r];
    PrintRow({row.rq, row.workload.name, ToString(row.dataflow),
              ToString(result.DominantClass()),
              std::to_string(result.MaskedCount()),
              result.SingleClassProperty() ? "holds" : "violated",
              Percent(result.ClassAgreement()),
              Percent(result.ExactAgreement())},
             widths);
  }

  if (!smoke) {
    std::cout
        << "\nPaper expectations: WS GEMM -> single-column (Fig. 3a), OS "
           "GEMM -> single-element\n(Fig. 3b); 112x112 adds the multi-tile "
           "variants (Fig. 3c/3d); conv 3x3x3x3 ->\nsingle-channel (Fig. "
           "3e), conv 3x3x3x8 -> multi-channel (Fig. 3f/3g).\n"
           "Deviation note: under the shift-GEMM conv mapping the 3x3x3x8 "
           "kernel yields\nmulti-channel for fault columns reused across "
           "column-tiles (c < 8) and\nsingle-channel for the rest — the "
           "paper reports one class per configuration\nfrom representative "
           "sites; masked sites for 3x3x3x3 sit in array columns the\n"
           "9-column operand never reaches.\n";
  }
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";
  if (!options.records_csv.empty()) {
    std::cout << "wrote record CSV to " << options.records_csv << "\n";
  }

  // Under an explicit --engine the bench is being used as one arm of a
  // cross-engine comparison driven from outside (CI runs it once per engine
  // and diffs the CSVs), so the built-in comparison is skipped.
  if (options.engine.empty()) {
    std::cout << "\n=== Execution-engine comparison: GEMM 16x16 WS, "
                 "exhaustive 256 sites ===\n\n";
    const std::vector<std::size_t> engine_widths = {14, 10, 14, 14, 9};
    PrintRow(
        {"engine", "wall [s]", "faulty PE-steps", "skipped", "identical"},
        engine_widths);
    PrintRule(engine_widths);

    CampaignResult baseline;
    double differential_seconds = 0;
    double batch_seconds = 0;
    double predicted_seconds = 0;
    for (const CampaignEngine engine :
         {CampaignEngine::kReference, CampaignEngine::kFull,
          CampaignEngine::kDifferential, CampaignEngine::kBatch,
          CampaignEngine::kPredicted}) {
      CampaignConfig config;
      config.accel = PaperAccel();
      config.workload = Gemm16x16();
      config.dataflow = Dataflow::kWeightStationary;
      config.bit = 8;
      config.polarity = StuckPolarity::kStuckAt1;
      config.engine = engine;
      const auto start = std::chrono::steady_clock::now();
      CampaignResult result;
      std::int64_t iterations = 0;
      do {
        CollectorSink collector;
        saffire::RunSweep(SingleCampaignPlan(config), RunOptions{}, collector);
        result = collector.TakeResults().front();
        ++iterations;
      } while (seconds_since(start) < options.min_time);
      const double seconds =
          seconds_since(start) / static_cast<double>(iterations);
      report.Add("engine_comparison/" + ToString(engine),
                 seconds_since(start), iterations);
      if (engine == CampaignEngine::kDifferential) {
        differential_seconds = seconds;
      }
      if (engine == CampaignEngine::kBatch) batch_seconds = seconds;
      if (engine == CampaignEngine::kPredicted) predicted_seconds = seconds;

      bool identical = true;
      if (engine == CampaignEngine::kReference) {
        baseline = result;
      } else {
        identical = result.Histogram() == baseline.Histogram() &&
                    result.ClassAgreement() == baseline.ClassAgreement() &&
                    result.ContainmentRate() == baseline.ContainmentRate();
        for (std::size_t i = 0; i < result.records.size(); ++i) {
          identical = identical &&
                      result.records[i].observed ==
                          baseline.records[i].observed &&
                      result.records[i].corrupted_count ==
                          baseline.records[i].corrupted_count &&
                      result.records[i].cycles == baseline.records[i].cycles;
        }
      }
      std::string label = ToString(engine);
      if (engine == CampaignEngine::kBatch && result.batches_run > 0) {
        label += " (x" + std::to_string(result.lanes_filled /
                                        result.batches_run) +
                 ")";
      }
      PrintRow({label, FormatDouble(seconds, 2),
                std::to_string(result.FaultyPeSteps()),
                std::to_string(result.FaultyPeStepsSkipped()),
                identical ? "yes" : "NO"},
               engine_widths);
      if (!identical) {
        std::cout << "\nERROR: " << ToString(engine)
                  << " engine diverged from the reference results\n";
        return 1;
      }
    }
    if (batch_seconds > 0) {
      std::cout << "\nbatch speedup over differential: "
                << FormatDouble(differential_seconds / batch_seconds, 2)
                << "x\n";
    }
    if (predicted_seconds > 0) {
      std::cout << "predicted speedup over differential: "
                << FormatDouble(differential_seconds / predicted_seconds, 2)
                << "x\n";
    }

    // Symmetry-aware dedup on the same campaign: one representative per
    // site-equivalence class simulated, member records synthesized. Must
    // stay record-identical to the exhaustive differential run.
    {
      CampaignConfig config;
      config.accel = PaperAccel();
      config.workload = Gemm16x16();
      config.dataflow = Dataflow::kWeightStationary;
      config.bit = 8;
      config.polarity = StuckPolarity::kStuckAt1;
      config.symmetry = true;
      const auto start = std::chrono::steady_clock::now();
      CampaignResult result;
      std::int64_t iterations = 0;
      do {
        CollectorSink collector;
        saffire::RunSweep(SingleCampaignPlan(config), RunOptions{}, collector);
        result = collector.TakeResults().front();
        ++iterations;
      } while (seconds_since(start) < options.min_time);
      const double seconds =
          seconds_since(start) / static_cast<double>(iterations);
      report.Add("symmetry/differential", seconds_since(start), iterations);

      bool identical = result.records.size() == baseline.records.size();
      for (std::size_t i = 0; identical && i < result.records.size(); ++i) {
        identical = result.records[i].observed == baseline.records[i].observed &&
                    result.records[i].corrupted_count ==
                        baseline.records[i].corrupted_count &&
                    result.records[i].cycles == baseline.records[i].cycles;
      }
      const PreparedCampaign prepared = PrepareCampaign(config);
      std::cout << "symmetry speedup over differential: "
                << FormatDouble(differential_seconds / seconds, 2) << "x ("
                << prepared.symmetry_classes << " classes / "
                << result.records.size() << " sites, records "
                << (identical ? "identical" : "DIVERGED") << ")\n";
      if (!identical) {
        std::cout << "\nERROR: symmetry run diverged from the reference "
                     "results\n";
        return 1;
      }
    }
  }

  if (!ExportBenchObservability(options)) return 1;
  return report.Write(options, "bench_table1_campaigns") ? 0 : 1;
}
