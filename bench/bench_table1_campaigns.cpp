// Table I reproduction: the full campaign matrix of the paper's
// evaluation. One row per (workload, dataflow) configuration with an
// exhaustive 256-site stuck-at campaign (Sec. III-B), reporting the
// dominant fault-pattern class, the masked-site count, the single-class
// property, and predictor agreement.
//
// Paper reference points:
//   RQ1 rows: GEMM 16×16 under OS vs WS (Fig. 3a/3b).
//   RQ2 rows: GEMM vs conv kernels 3×3×3×3 and 3×3×3×8 under WS.
//   RQ3 rows: 16×16 vs 112×112 operand sizes.
//
// The matrix runs as one CampaignPlan batch through the shared executor.
// The trailing engine-comparison section re-runs the 16×16 WS GEMM campaign
// under all three execution engines (reference / full / differential) and
// checks their results are bit-identical, recording the PE-step saving;
// those three run as separate plans so each engine gets its own wall clock.
#include <chrono>
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  struct Row {
    const char* rq;
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  const Row rows[] = {
      {"RQ1", Gemm16x16(), Dataflow::kWeightStationary},
      {"RQ1", Gemm16x16(), Dataflow::kOutputStationary},
      {"RQ2", Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary},
      {"RQ2", Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
      {"RQ3", Gemm112x112(), Dataflow::kWeightStationary},
      {"RQ3", Gemm112x112(), Dataflow::kOutputStationary},
      {"RQ3", Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };

  std::cout << "=== Table I campaign matrix: exhaustive 256-site stuck-at "
               "campaigns (SA1, adder_out bit 8) ===\n\n";
  const std::vector<std::size_t> widths = {4, 22, 3, 26, 7, 13, 10, 10};
  PrintRow({"RQ", "workload", "DF", "dominant class", "masked",
            "single-class", "cls-agree", "exact"},
           widths);
  PrintRule(widths);

  std::vector<SweepSpec> specs;
  for (const Row& row : rows) {
    SweepSpec spec;
    spec.accel = PaperAccel();
    spec.workloads = {row.workload};
    spec.dataflows = {row.dataflow};
    specs.push_back(std::move(spec));
  }
  const ExecutorStats before = CampaignExecutor::Shared().stats();
  const std::vector<CampaignResult> results = RunSweep(specs);

  for (std::size_t r = 0; r < std::size(rows); ++r) {
    const Row& row = rows[r];
    const CampaignResult& result = results[r];
    PrintRow({row.rq, row.workload.name, ToString(row.dataflow),
              ToString(result.DominantClass()),
              std::to_string(result.MaskedCount()),
              result.SingleClassProperty() ? "holds" : "violated",
              Percent(result.ClassAgreement()),
              Percent(result.ExactAgreement())},
             widths);
  }

  std::cout
      << "\nPaper expectations: WS GEMM -> single-column (Fig. 3a), OS GEMM "
         "-> single-element\n(Fig. 3b); 112x112 adds the multi-tile variants "
         "(Fig. 3c/3d); conv 3x3x3x3 ->\nsingle-channel (Fig. 3e), conv "
         "3x3x3x8 -> multi-channel (Fig. 3f/3g).\n"
         "Deviation note: under the shift-GEMM conv mapping the 3x3x3x8 "
         "kernel yields\nmulti-channel for fault columns reused across "
         "column-tiles (c < 8) and\nsingle-channel for the rest — the paper "
         "reports one class per configuration\nfrom representative sites; "
         "masked sites for 3x3x3x3 sit in array columns the\n9-column "
         "operand never reaches.\n";
  std::cout << "\n" << ExecutorStatsLine(before) << "\n";

  std::cout << "\n=== Execution-engine comparison: GEMM 16x16 WS, exhaustive "
               "256 sites ===\n\n";
  const std::vector<std::size_t> engine_widths = {14, 10, 14, 14, 9};
  PrintRow({"engine", "wall [s]", "faulty PE-steps", "skipped", "identical"},
           engine_widths);
  PrintRule(engine_widths);

  CampaignResult baseline;
  for (const CampaignEngine engine :
       {CampaignEngine::kReference, CampaignEngine::kFull,
        CampaignEngine::kDifferential}) {
    CampaignConfig config;
    config.accel = PaperAccel();
    config.workload = Gemm16x16();
    config.dataflow = Dataflow::kWeightStationary;
    config.bit = 8;
    config.polarity = StuckPolarity::kStuckAt1;
    config.engine = engine;
    CollectorSink collector;
    const auto start = std::chrono::steady_clock::now();
    CampaignExecutor::Shared().Run(SingleCampaignPlan(config), collector);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const CampaignResult result = collector.TakeResults().front();
    bool identical = true;
    if (engine == CampaignEngine::kReference) {
      baseline = result;
    } else {
      identical = result.Histogram() == baseline.Histogram() &&
                  result.ClassAgreement() == baseline.ClassAgreement() &&
                  result.ContainmentRate() == baseline.ContainmentRate();
      for (std::size_t i = 0; i < result.records.size(); ++i) {
        identical = identical &&
                    result.records[i].observed ==
                        baseline.records[i].observed &&
                    result.records[i].corrupted_count ==
                        baseline.records[i].corrupted_count &&
                    result.records[i].cycles == baseline.records[i].cycles;
      }
    }
    PrintRow({ToString(engine), FormatDouble(seconds, 2),
              std::to_string(result.FaultyPeSteps()),
              std::to_string(result.FaultyPeStepsSkipped()),
              identical ? "yes" : "NO"},
             engine_widths);
    if (!identical) {
      std::cout << "\nERROR: " << ToString(engine)
                << " engine diverged from the reference results\n";
      return 1;
    }
  }
  return 0;
}
