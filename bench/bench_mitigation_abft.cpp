// Fault mitigation via ABFT checksums — the paper's Sec. V closes wishing
// for "generic software resilience solutions ... irrespective of the DNN
// accelerator being used"; this bench evaluates one: Huang–Abraham
// checksummed GEMM over exhaustive stuck-at campaigns.
//
// Because the fault patterns are exactly the paper's classes, the
// checksum geometry maps 1:1: WS column faults and OS element faults are
// fully *corrected*, IS row faults likewise; multi-tile patterns are
// *detected* but underdetermined. The checksum overhead is O(M·K+K·N+M·N)
// host work against the array's O(M·K·N).
#include <iostream>
#include <map>

#include "bench_util.h"
#include "fi/injector.h"
#include "mitigation/abft.h"
#include "tensor/gemm.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;
  const AccelConfig config = PaperAccel();

  std::cout << "=== ABFT over exhaustive 256-site stuck-at campaigns (SA1 "
               "bit 24, positive operands) ===\n\n";
  const std::vector<std::size_t> widths = {14, 3, 38, 10, 10};
  PrintRow({"GEMM", "DF", "diagnosis histogram", "corrected", "detected"},
           widths);
  PrintRule(widths);

  Rng rng(42);
  const auto make_positive = [&rng](std::int64_t rows, std::int64_t cols) {
    Int8Tensor t({rows, cols});
    for (std::int64_t i = 0; i < t.size(); ++i) {
      t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(1, 40));
    }
    return t;
  };

  struct Case {
    std::int64_t size;
    Dataflow dataflow;
  };
  const Case cases[] = {
      {16, Dataflow::kWeightStationary},
      {16, Dataflow::kOutputStationary},
      {16, Dataflow::kInputStationary},
      {48, Dataflow::kWeightStationary},
      {48, Dataflow::kOutputStationary},
  };

  for (const Case& bench_case : cases) {
    const auto a = make_positive(bench_case.size, bench_case.size);
    const auto b = make_positive(bench_case.size, bench_case.size);
    const auto golden = GemmRef(a, b);

    Accelerator accel(config);
    Driver driver(accel);
    AbftGemm abft(driver);
    ExecOptions options;
    options.dataflow = bench_case.dataflow;

    std::map<AbftDiagnosis, std::int64_t> histogram;
    std::int64_t corrected_exactly = 0;
    std::int64_t detected = 0;
    for (const PeCoord site : AllPeCoords(config.array)) {
      FaultInjector injector(
          {StuckAtAdder(site, 24, StuckPolarity::kStuckAt1)}, config.array);
      accel.array().InstallFaultHook(&injector);
      AbftReport report;
      const auto result = abft.Multiply(a, b, options, &report);
      accel.array().ClearFaultHook();
      ++histogram[report.diagnosis];
      if (report.diagnosis != AbftDiagnosis::kClean) ++detected;
      if (result == golden && report.diagnosis != AbftDiagnosis::kComplex) {
        ++corrected_exactly;
      }
    }

    std::vector<std::string> parts;
    for (const auto& [diagnosis, count] : histogram) {
      parts.push_back(ToString(diagnosis) + "x" + std::to_string(count));
    }
    PrintRow({std::to_string(bench_case.size) + "x" +
                  std::to_string(bench_case.size),
              ToString(bench_case.dataflow), Join(parts, ", "),
              std::to_string(corrected_exactly) + "/256",
              std::to_string(detected) + "/256"},
             widths);
  }

  std::cout
      << "\n'clean' entries are value-masked faults (no output corruption "
         "to mitigate);\nuntiled single-column/-row/-element corruptions are "
         "corrected to the exact\ngolden result; tiled (48x48) WS faults "
         "spread over 3 columns — detected but\nuncorrectable from one "
         "checksum pair. Checksum cost for 16x16: ~768 host MACs\nvs 4096 "
         "array MACs per GEMM (~19%), amortizing to O(1/N) for larger "
         "operands.\n";
  return 0;
}
