// The determinism claim (Sec. IV, Discussion): "given the hardware
// configurations, type of operation and its properties, and the location
// of the stuck-at fault, we can predict the fault patterns" — validated by
// exhaustive cross-validation of the analytical predictor (and the
// app-level injector built on it) against the cycle-accurate simulator.
//
// This is the contract that lets TensorFI/LLTFI-style tools model systolic
// arrays without RTL simulation; the final column shows the per-experiment
// simulation work the analytical path avoids.
#include <iostream>

#include "appfi/appfi.h"
#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Predictor & app-level injector vs cycle-accurate "
               "simulation ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 6, 10, 10, 11, 16};
  PrintRow({"workload", "DF", "sites", "class", "coords", "bit-exact",
            "PE-steps/expt"},
           widths);
  PrintRule(widths);

  struct Case {
    WorkloadSpec workload;
    Dataflow dataflow;
    std::int64_t sites;  // 0 = exhaustive
  };
  const Case cases[] = {
      {Gemm16x16(), Dataflow::kWeightStationary, 0},
      {Gemm16x16(), Dataflow::kOutputStationary, 0},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary, 0},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary, 0},
      {Gemm112x112(), Dataflow::kWeightStationary, 48},
      {Gemm112x112(), Dataflow::kOutputStationary, 48},
      {Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary, 48},
  };

  bool all_exact = true;
  for (const Case& bench_case : cases) {
    // Class/coordinate agreement from the campaign machinery.
    CampaignConfig config;
    config.accel = PaperAccel();
    config.workload = bench_case.workload;
    config.dataflow = bench_case.dataflow;
    config.bit = 8;
    config.max_sites = bench_case.sites;
    const CampaignResult result = bench::RunCampaignForBench(config, 1);

    // Bit-exact value agreement via the app-level emulator on a site
    // subsample (the campaign already covers coordinates exhaustively).
    std::int64_t value_matches = 0;
    std::int64_t value_checks = 0;
    std::uint64_t pe_steps = 0;
    AppFiSpec fi_spec;
    fi_spec.accel = config.accel;
    fi_spec.dataflow = bench_case.dataflow;
    const NetworkFi injector(fi_spec);
    const auto sites = CampaignSites(config);
    for (std::size_t i = 0; i < sites.size();
         i += std::max<std::size_t>(1, sites.size() / 8)) {
      const FaultSpec fault =
          StuckAtAdder(sites[i], 8, StuckPolarity::kStuckAt1);
      const CrossValidation validation =
          injector.CrossValidate(bench_case.workload, fault);
      ++value_checks;
      if (validation.values_match) ++value_matches;
      pe_steps = validation.simulated_pe_steps;
    }

    const bool exact = result.ExactAgreement() == 1.0 &&
                       value_matches == value_checks;
    all_exact = all_exact && exact;
    PrintRow({bench_case.workload.name, ToString(bench_case.dataflow),
              std::to_string(result.records.size()),
              Percent(result.ClassAgreement()),
              Percent(result.ExactAgreement()),
              std::to_string(value_matches) + "/" +
                  std::to_string(value_checks),
              std::to_string(pe_steps)},
             widths);
  }

  // The predicted rung's coverage: which share of a full-signal stuck-at
  // sweep the closed form serves (saffire.predict.hits) vs routes to the
  // batch residue (saffire.predict.residue), per dataflow. The rates are
  // structural — they depend only on the signal mix, so they hold for the
  // paper-scale campaigns too.
  std::cout << "\n=== Predicted-engine coverage: GEMM 16x16, stuck-at, "
               "all signals ===\n\n";
  const std::vector<std::size_t> cover_widths = {3, 12, 12, 10};
  PrintRow({"DF", "closed-form", "residue", "hit rate"}, cover_widths);
  PrintRule(cover_widths);
  obs::Counter& hits =
      obs::MetricsRegistry::Default().GetCounter("saffire.predict.hits");
  obs::Counter& residue =
      obs::MetricsRegistry::Default().GetCounter("saffire.predict.residue");
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    const std::int64_t hits_before = hits.value();
    const std::int64_t residue_before = residue.value();
    SweepSpec spec;
    spec.accel = PaperAccel();
    spec.workloads = {Gemm16x16()};
    spec.dataflows = {dataflow};
    spec.signals = {MacSignal::kWeightOperand, MacSignal::kMulOut,
                    MacSignal::kAdderOut, MacSignal::kActForward,
                    MacSignal::kSouthForward};
    spec.bits = {4};  // in-width for every signal (weight_operand is 8-bit)
    spec.max_sites = 16;
    spec.engine = CampaignEngine::kPredicted;
    bench::RunSweep(spec);
    const std::int64_t closed_form = hits.value() - hits_before;
    const std::int64_t routed = residue.value() - residue_before;
    PrintRow({ToString(dataflow), std::to_string(closed_form),
              std::to_string(routed),
              Percent(static_cast<double>(closed_form) /
                      static_cast<double>(closed_form + routed))},
             cover_widths);
  }

  std::cout << "\n"
            << (all_exact
                    ? "Every prediction matched the simulation exactly — the "
                      "paper's determinism claim\nholds across the full "
                      "configuration matrix."
                    : "DEVIATION: some predictions did not match the "
                      "simulation.")
            << "\nThe app-level path replaces the per-experiment PE-step "
               "counts above with a\ncoordinate-set computation — the "
               "scalability gap (45 s/experiment on the\npaper's FPGA) that "
               "motivates pattern-based injection.\n";
  return 0;
}
