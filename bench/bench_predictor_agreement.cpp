// The determinism claim (Sec. IV, Discussion): "given the hardware
// configurations, type of operation and its properties, and the location
// of the stuck-at fault, we can predict the fault patterns" — validated by
// exhaustive cross-validation of the analytical predictor (and the
// app-level injector built on it) against the cycle-accurate simulator.
//
// This is the contract that lets TensorFI/LLTFI-style tools model systolic
// arrays without RTL simulation; the final column shows the per-experiment
// simulation work the analytical path avoids.
#include <iostream>

#include "appfi/appfi.h"
#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Predictor & app-level injector vs cycle-accurate "
               "simulation ===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 6, 10, 10, 11, 16};
  PrintRow({"workload", "DF", "sites", "class", "coords", "bit-exact",
            "PE-steps/expt"},
           widths);
  PrintRule(widths);

  struct Case {
    WorkloadSpec workload;
    Dataflow dataflow;
    std::int64_t sites;  // 0 = exhaustive
  };
  const Case cases[] = {
      {Gemm16x16(), Dataflow::kWeightStationary, 0},
      {Gemm16x16(), Dataflow::kOutputStationary, 0},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary, 0},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary, 0},
      {Gemm112x112(), Dataflow::kWeightStationary, 48},
      {Gemm112x112(), Dataflow::kOutputStationary, 48},
      {Conv112Kernel3x3x3x8(), Dataflow::kWeightStationary, 48},
  };

  bool all_exact = true;
  for (const Case& bench_case : cases) {
    // Class/coordinate agreement from the campaign machinery.
    CampaignConfig config;
    config.accel = PaperAccel();
    config.workload = bench_case.workload;
    config.dataflow = bench_case.dataflow;
    config.bit = 8;
    config.max_sites = bench_case.sites;
    const CampaignResult result = bench::RunCampaignForBench(config, 1);

    // Bit-exact value agreement via the app-level emulator on a site
    // subsample (the campaign already covers coordinates exhaustively).
    std::int64_t value_matches = 0;
    std::int64_t value_checks = 0;
    std::uint64_t pe_steps = 0;
    const auto sites = CampaignSites(config);
    for (std::size_t i = 0; i < sites.size();
         i += std::max<std::size_t>(1, sites.size() / 8)) {
      const FaultSpec fault =
          StuckAtAdder(sites[i], 8, StuckPolarity::kStuckAt1);
      const CrossValidation validation = CrossValidate(
          bench_case.workload, config.accel, bench_case.dataflow, fault);
      ++value_checks;
      if (validation.values_match) ++value_matches;
      pe_steps = validation.simulated_pe_steps;
    }

    const bool exact = result.ExactAgreement() == 1.0 &&
                       value_matches == value_checks;
    all_exact = all_exact && exact;
    PrintRow({bench_case.workload.name, ToString(bench_case.dataflow),
              std::to_string(result.records.size()),
              Percent(result.ClassAgreement()),
              Percent(result.ExactAgreement()),
              std::to_string(value_matches) + "/" +
                  std::to_string(value_checks),
              std::to_string(pe_steps)},
             widths);
  }

  std::cout << "\n"
            << (all_exact
                    ? "Every prediction matched the simulation exactly — the "
                      "paper's determinism claim\nholds across the full "
                      "configuration matrix."
                    : "DEVIATION: some predictions did not match the "
                      "simulation.")
            << "\nThe app-level path replaces the per-experiment PE-step "
               "counts above with a\ncoordinate-set computation — the "
               "scalability gap (45 s/experiment on the\npaper's FPGA) that "
               "motivates pattern-based injection.\n";
  return 0;
}
