#!/usr/bin/env bash
# Runs the benchmark binaries that emit machine-readable timings and drops
# their BENCH_*.json artifacts (google-benchmark JSON schema) at the
# repository root. Knobs:
#   BUILD_DIR        build tree holding bench/ binaries (default: ./build)
#   BENCH_MIN_TIME   --benchmark_min_time per measurement (default: 0.05s;
#                    bench_table1_campaigns also switches to its smoke
#                    matrix whenever this is non-zero)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
MIN_TIME="${BENCH_MIN_TIME:-0.05s}"

"$BUILD/bench/bench_table1_campaigns" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$ROOT/BENCH_table1.json" \
  --benchmark_out_format=json

# Older google-benchmark releases only accept a bare double for
# --benchmark_min_time, so strip any trailing unit suffix here.
"$BUILD/bench/bench_fi_cost" \
  --benchmark_min_time="${MIN_TIME%s}" \
  --benchmark_out="$ROOT/BENCH_fi_cost.json" \
  --benchmark_out_format=json

"$BUILD/bench/bench_dnn_campaign" \
  --benchmark_filter='BM_NetworkSweep' \
  --benchmark_min_time="${MIN_TIME%s}" \
  --benchmark_out="$ROOT/BENCH_dnn_campaign.json" \
  --benchmark_out_format=json

# The per-policy graceful-degradation series lands in its own artifact so
# the rung-speedup numbers above stay comparable across revisions.
"$BUILD/bench/bench_dnn_campaign" \
  --benchmark_filter='BM_MitigatedNetworkSweep' \
  --benchmark_min_time="${MIN_TIME%s}" \
  --benchmark_out="$ROOT/BENCH_mitigation.json" \
  --benchmark_out_format=json

echo "wrote $ROOT/BENCH_table1.json, $ROOT/BENCH_fi_cost.json," \
     "$ROOT/BENCH_dnn_campaign.json, and $ROOT/BENCH_mitigation.json"
