// DNN accuracy degradation under stuck-at faults — the motivation the
// paper opens with (Sec. I, citing Zhang et al.: 8 of 65K faulty MACs cost
// a CNN 40% of its MNIST accuracy).
//
// A quantized MLP classifies synthetic digits on the simulated
// accelerator; we sweep the number of simultaneously faulty MAC units
// under both dataflows and report simulated (RTL-style) accuracy alongside
// the app-level predicted-pattern injector. RQ1's containment result shows
// up at application level: OS degrades far more gracefully than WS.
#include <iostream>

#include "bench_util.h"
#include "dnn/quantize.h"
#include "fi/injector.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  const Dataset train = MakeSyntheticDigits(600, 0.02, 21);
  const Dataset test = MakeSyntheticDigits(300, 0.02, 22);
  Mlp mlp(kDigitPixels, 32, kDigitClasses, 5);
  Rng train_rng(6);
  mlp.TrainUntil(train, 0.98, 80, 0.1, train_rng);
  const QuantizedMlp quantized(mlp, train);

  const AccelConfig config = PaperAccel();
  Accelerator accel(config);
  Driver driver(accel);

  std::cout << "=== DNN accuracy vs faulty MAC count (16x16 array, "
               "stuck-at-1, random sites/bits, 3 trials) ===\n\n";
  std::cout << "float test accuracy: " << Percent(mlp.Accuracy(test))
            << ", INT8 clean accuracy: "
            << Percent(quantized.AccuracyCpu(test)) << "\n\n";

  const std::vector<std::size_t> widths = {11, 13, 13, 13};
  PrintRow({"faulty MACs", "WS sim", "OS sim", "WS app-FI"}, widths);
  PrintRule(widths);

  Rng fault_rng(99);
  for (const int faulty_macs : {0, 1, 2, 4, 8, 16, 32}) {
    double ws_sum = 0.0;
    double os_sum = 0.0;
    double appfi_sum = 0.0;
    const int trials = faulty_macs == 0 ? 1 : 3;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<FaultSpec> faults;
      for (int i = 0; i < faulty_macs; ++i) {
        FaultSpec fault = SampleAdderFault(config.array, fault_rng, 8, 28);
        fault.polarity = StuckPolarity::kStuckAt1;
        faults.push_back(fault);
      }
      if (faults.empty()) {
        ws_sum += quantized.AccuracyAccel(test, driver,
                                          Dataflow::kWeightStationary);
        os_sum += quantized.AccuracyAccel(test, driver,
                                          Dataflow::kOutputStationary);
        appfi_sum += quantized.AccuracyAppFi(
            test, config, Dataflow::kWeightStationary, faults);
        continue;
      }
      FaultInjector injector(faults, config.array);
      accel.array().InstallFaultHook(&injector);
      ws_sum += quantized.AccuracyAccel(test, driver,
                                        Dataflow::kWeightStationary);
      os_sum += quantized.AccuracyAccel(test, driver,
                                        Dataflow::kOutputStationary);
      accel.array().ClearFaultHook();
      appfi_sum += quantized.AccuracyAppFi(
          test, config, Dataflow::kWeightStationary, faults);
    }
    PrintRow({std::to_string(faulty_macs),
              Percent(ws_sum / trials), Percent(os_sum / trials),
              Percent(appfi_sum / trials)},
             widths);
  }

  std::cout
      << "\nShape to compare with the paper's motivation: a handful of "
         "faulty MACs (out of\n256) collapses WS accuracy — each poisons a "
         "full output column of every layer —\nwhile OS (single-element "
         "blast radius, RQ1) degrades much more slowly. The\napp-level "
         "injector tracks the simulated WS degradation without running "
         "the\narray.\n";
  return 0;
}
