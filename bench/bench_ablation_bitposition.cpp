// Stuck-bit position ablation: which bits of the 32-bit accumulator path
// actually matter. The paper holds the bit position fixed per campaign;
// this sweep runs a full campaign per bit on realistic (random INT8)
// operands, measuring how often the fault reaches the output and how
// large the damage is — the error-magnitude dimension that application-
// level injectors need alongside the spatial classes.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Stuck-bit position sweep (GEMM 16x16, WS, random "
               "operands, 256 sites/bit) ===\n\n";
  const std::vector<std::size_t> widths = {4, 4, 8, 14, 16, 16};
  PrintRow({"bit", "pol", "masked", "clean pattern", "mean |delta|",
            "max |delta|"},
           widths);
  PrintRule(widths);

  for (const StuckPolarity polarity :
       {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0}) {
    for (const int bit : {0, 4, 8, 12, 16, 20, 24, 28, 31}) {
      CampaignConfig config;
      config.accel = PaperAccel();
      config.workload = Gemm16x16();
      config.workload.input_fill = OperandFill::kRandom;
      config.workload.weight_fill = OperandFill::kRandom;
      config.dataflow = Dataflow::kWeightStationary;
      config.bit = bit;
      config.polarity = polarity;
      const CampaignResult result = bench::RunCampaignForBench(config);

      std::int64_t masked = 0;
      std::int64_t clean = 0;
      double mean_delta = 0.0;
      std::int64_t max_delta = 0;
      std::int64_t active = 0;
      for (const ExperimentRecord& record : result.records) {
        if (record.observed == PatternClass::kMasked) {
          ++masked;
          continue;
        }
        ++active;
        if (record.observed != PatternClass::kOther) ++clean;
        mean_delta += static_cast<double>(record.max_abs_delta);
        max_delta = std::max(max_delta, record.max_abs_delta);
      }
      if (active > 0) mean_delta /= static_cast<double>(active);

      PrintRow({std::to_string(bit), ToString(polarity),
                std::to_string(masked), std::to_string(clean),
                FormatDouble(mean_delta, 0), std::to_string(max_delta)},
               widths);
    }
  }

  std::cout
      << "\nEvery active fault shifts its reach by exactly ±2^bit (one "
         "flipped adder bit\nper pass), so damage grows exponentially with "
         "the bit position: bit-0 faults\nchange outputs by 1 LSB, bit-31 "
         "faults by 2^31. Only the lowest bits are ever\nvalue-masked on "
         "random data — signed partial sums keep the high bits busy\n(sign "
         "extension), so SA0 fires there too. Low bits also degrade the "
         "clean\nspatial classes into partial ('other') shapes. Error "
         "magnitude, not just the\nspatial class, determines whether a "
         "stuck MAC is benign.\n";
  return 0;
}
