// Symmetry-based experiment reduction — the paper's closing observation:
// "our observation about the symmetry of fault patterns ... can also be
// used by application-level FIs to reduce the number of FI experiments"
// (Sec. IV, Discussion).
//
// For every Table I configuration this bench partitions the 256 fault
// sites into equivalence classes of identical predicted reach and reports
// the reduction, then validates one partition against simulation.
#include <iostream>

#include "bench_util.h"
#include "fi/runner.h"
#include "patterns/symmetry.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;
  const AccelConfig config = PaperAccel();

  std::cout << "=== Fault-site symmetry: 256 sites -> equivalence classes "
               "===\n\n";
  const std::vector<std::size_t> widths = {24, 3, 9, 11, 12};
  PrintRow({"workload", "DF", "classes", "reduction", "largest class"},
           widths);
  PrintRule(widths);

  struct Row {
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  const Row rows[] = {
      {Gemm16x16(), Dataflow::kWeightStationary},
      {Gemm16x16(), Dataflow::kOutputStationary},
      {Gemm16x16(), Dataflow::kInputStationary},
      {Gemm112x112(), Dataflow::kWeightStationary},
      {Gemm112x112(), Dataflow::kOutputStationary},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };

  for (const Row& row : rows) {
    const auto classes =
        PartitionFaultSites(row.workload, config, row.dataflow);
    std::size_t largest = 0;
    for (const auto& equivalence : classes) {
      largest = std::max(largest, equivalence.members.size());
    }
    PrintRow({row.workload.name, ToString(row.dataflow),
              std::to_string(classes.size()),
              Percent(SymmetryReductionFactor(row.workload, config,
                                              row.dataflow)),
              std::to_string(largest) + " sites"},
             widths);
  }

  // Validation: for the WS GEMM partition, simulate the representative and
  // the farthest member of every class and confirm identical corruption.
  std::cout << "\nvalidating the gemm-16x16/WS partition against "
               "simulation...\n";
  FiRunner runner(config);
  const auto golden = runner.RunGolden(Gemm16x16(), Dataflow::kWeightStationary);
  const auto classes =
      PartitionFaultSites(Gemm16x16(), config, Dataflow::kWeightStationary);
  int validated = 0;
  for (const auto& equivalence : classes) {
    const FaultSpec rep_fault = StuckAtAdder(equivalence.representative, 8,
                                             StuckPolarity::kStuckAt1);
    const FaultSpec member_fault = StuckAtAdder(equivalence.members.back(),
                                                8, StuckPolarity::kStuckAt1);
    const auto rep_map = ExtractCorruption(
        golden.output,
        runner.RunFaulty(Gemm16x16(), Dataflow::kWeightStationary,
                         {&rep_fault, 1})
            .output);
    const auto member_map = ExtractCorruption(
        golden.output,
        runner.RunFaulty(Gemm16x16(), Dataflow::kWeightStationary,
                         {&member_fault, 1})
            .output);
    if (rep_map.corrupted == member_map.corrupted) ++validated;
  }
  std::cout << "  " << validated << "/" << classes.size()
            << " classes confirmed by simulation\n\n"
            << "WS and IS collapse 256 experiments into 16 (one per array "
               "column); OS gains\nnothing (each PE owns a distinct output "
               "element) — exhaustive campaigns are\nonly needed where the "
               "symmetry says so.\n";
  return 0;
}
