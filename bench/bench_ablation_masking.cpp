// Ablation for Challenge 2 (Sec. III-A): why the paper extracts patterns
// with uniform all-ones matrices instead of real DNN weights.
//
// Near-zero operands leave most partial sums at zero, so a stuck-at fault
// frequently changes nothing observable (or corrupts only a ragged subset
// that no longer forms a clean pattern). This sweep measures, per operand
// fill and fault polarity/bit, how many of the 256 sites stay masked and
// how many still produce a clean (paper-class) pattern.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  std::cout << "=== Challenge 2 ablation: operand fill vs masking (GEMM "
               "16x16, WS, 256 sites) ===\n\n";
  const std::vector<std::size_t> widths = {10, 4, 4, 7, 13, 10};
  PrintRow({"fill", "pol", "bit", "masked", "clean pattern", "'other'"},
           widths);
  PrintRule(widths);

  for (const OperandFill fill :
       {OperandFill::kOnes, OperandFill::kRandom, OperandFill::kNearZero}) {
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0}) {
      for (const int bit : {2, 8, 20}) {
        CampaignConfig config;
        config.accel = PaperAccel();
        config.workload = Gemm16x16();
        config.workload.input_fill = fill;
        config.workload.weight_fill = fill;
        config.dataflow = Dataflow::kWeightStationary;
        config.bit = bit;
        config.polarity = polarity;
        const CampaignResult result = bench::RunCampaignForBench(config);

        std::int64_t masked = 0;
        std::int64_t clean = 0;
        std::int64_t other = 0;
        for (const auto& [pattern, count] : result.Histogram()) {
          if (pattern == PatternClass::kMasked) {
            masked += count;
          } else if (pattern == PatternClass::kOther) {
            other += count;
          } else {
            clean += count;
          }
        }
        PrintRow({ToString(fill), ToString(polarity), std::to_string(bit),
                  std::to_string(masked), std::to_string(clean),
                  std::to_string(other)},
                 widths);
      }
    }
  }

  std::cout
      << "\nThe all-ones fill shows a clean pattern at every site whenever "
         "the stuck bit\ndisagrees with the known partial sums; realistic "
         "and near-zero operands mask\nmany sites or degrade the corruption "
         "into partial ('other') shapes — exactly\nwhy the paper uses a "
         "uniform non-zero weight matrix for pattern extraction.\n";
  return 0;
}
