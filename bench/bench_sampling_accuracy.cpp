// Sampling-accuracy study: FI methodology context for the paper's choice
// to run *exhaustive* 256-site campaigns (Sec. III-B). When campaigns get
// expensive (large arrays, long workloads), practitioners sample — this
// bench measures how fast sampled class histograms converge to the
// exhaustive ground truth, on the one Table I configuration whose classes
// are genuinely mixed (conv 3×3×3×8: single- vs multi-channel by site).
#include <iostream>
#include <map>

#include "bench_util.h"
#include "patterns/report.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;

  CampaignConfig config;
  config.accel = PaperAccel();
  config.workload = Conv16Kernel3x3x3x8();
  config.dataflow = Dataflow::kWeightStationary;
  config.bit = 8;

  const CampaignResult exhaustive = bench::RunCampaignForBench(config);
  std::map<PatternClass, double> truth;
  for (const auto& [pattern, count] : exhaustive.Histogram()) {
    truth[pattern] = static_cast<double>(count) /
                     static_cast<double>(exhaustive.records.size());
  }

  std::cout << "=== Sampled vs exhaustive class histograms (conv-16x16-"
               "3x3x3x8, WS) ===\n\nexhaustive ground truth:\n"
            << RenderHistogram(exhaustive) << "\n";

  const std::vector<std::size_t> widths = {7, 7, 26, 26};
  PrintRow({"sites", "seeds", "max class-fraction error",
            "worst dominant-class miss"},
           widths);
  PrintRule(widths);

  for (const std::int64_t sites : {8ll, 16ll, 32ll, 64ll, 128ll}) {
    double worst_error = 0.0;
    int dominant_misses = 0;
    constexpr int kSeeds = 20;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      CampaignConfig sampled_config = config;
      sampled_config.max_sites = sites;
      sampled_config.seed = static_cast<std::uint64_t>(seed);
      const CampaignResult sampled = bench::RunCampaignForBench(sampled_config);
      std::map<PatternClass, double> estimate;
      for (const auto& [pattern, count] : sampled.Histogram()) {
        estimate[pattern] = static_cast<double>(count) /
                            static_cast<double>(sampled.records.size());
      }
      for (const auto& [pattern, fraction] : truth) {
        const double err = std::abs(estimate[pattern] - fraction);
        worst_error = std::max(worst_error, err);
      }
      for (const auto& [pattern, fraction] : estimate) {
        if (truth.find(pattern) == truth.end()) {
          worst_error = std::max(worst_error, fraction);
        }
      }
      if (sampled.DominantClass() != exhaustive.DominantClass()) {
        ++dominant_misses;
      }
    }
    PrintRow({std::to_string(sites), std::to_string(kSeeds),
              Percent(worst_error),
              std::to_string(dominant_misses) + "/" +
                  std::to_string(kSeeds) + " seeds"},
             widths);
  }

  std::cout
      << "\nWith a 50/50 class mix, small samples routinely misestimate "
         "fractions and can\neven flip the dominant class — supporting the "
         "paper's exhaustive methodology at\n16x16, and (for larger arrays) "
         "the symmetry-guided sampling of\nbench_symmetry_reduction, which "
         "is exact rather than statistical.\n";
  return 0;
}
