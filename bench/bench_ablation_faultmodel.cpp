// Fault-model ablations around the paper's choices (Sec. II-E/F):
//   1. SSF vs MSF — the paper injects single stuck-at faults, citing that
//      SSF tests detect 98% of small multiple-fault sets; here multiple
//      simultaneous faults simply union their single-fault patterns.
//   2. Permanent stuck-at vs transient bit-flip — the Rech et al. contrast:
//      one flipped cycle corrupts at most a point, a permanent fault owns
//      the whole column/element structure.
//   3. Injection signal — the paper targets the adder output; the other
//      MAC signals produce different (sometimes unclassifiable) shapes,
//      showing why the site matters.
#include <iostream>

#include "bench_util.h"
#include "fi/runner.h"

int main() {
  using namespace saffire;
  using namespace saffire::bench;
  const AccelConfig config = PaperAccel();
  const WorkloadSpec workload = Gemm16x16();
  const Dataflow dataflow = Dataflow::kWeightStationary;
  const ClassifyContext context =
      MakeClassifyContext(workload, config, dataflow);

  FiRunner runner(config);
  const RunResult golden = runner.RunGolden(workload, dataflow);

  std::cout << "=== 1. single vs multiple stuck-at faults (GEMM 16x16, WS, "
               "SA1 bit 8) ===\n\n";
  {
    const std::vector<std::size_t> widths = {7, 34, 10, 26};
    PrintRow({"faults", "sites", "corrupted", "shape"}, widths);
    PrintRule(widths);
    const PeCoord sites[] = {{4, 9}, {7, 2}, {0, 13}, {11, 5}, {15, 9}};
    for (const std::size_t count : {1u, 2u, 5u}) {
      std::vector<FaultSpec> faults;
      std::vector<std::string> labels;
      for (std::size_t i = 0; i < count; ++i) {
        faults.push_back(
            StuckAtAdder(sites[i], 8, StuckPolarity::kStuckAt1));
        std::string label = "(";
        label += std::to_string(sites[i].row);
        label += ",";
        label += std::to_string(sites[i].col);
        label += ")";
        labels.push_back(std::move(label));
      }
      const RunResult faulty = runner.RunFaulty(workload, dataflow, faults);
      const CorruptionMap map =
          ExtractCorruption(golden.output, faulty.output);
      const auto cols = map.DistinctCols();
      // Site (15,9) shares column 9 with site (4,9): 5 faults hit only 4
      // distinct columns — patterns union per column.
      PrintRow({std::to_string(count), Join(labels, " "),
                std::to_string(map.count()),
                std::to_string(cols.size()) + " full column(s)"},
               widths);
    }
    std::cout << "\nMSF corruption is the union of the per-fault "
                 "single-column patterns (two faults\nin one column "
                 "coincide) — consistent with the paper's use of the SSF "
                 "model as\nrepresentative.\n\n";
  }

  std::cout << "=== 2. permanent stuck-at vs transient bit-flip ===\n\n";
  {
    const std::vector<std::size_t> widths = {22, 12, 10, 26};
    PrintRow({"fault", "strike cycle", "corrupted", "observed class"},
             widths);
    PrintRule(widths);
    // Permanent baseline.
    {
      const FaultSpec fault =
          StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
      const RunResult faulty =
          runner.RunFaulty(workload, dataflow, {&fault, 1});
      const CorruptionMap map =
          ExtractCorruption(golden.output, faulty.output);
      PrintRow({"permanent SA1 bit8", "-", std::to_string(map.count()),
                ToString(Classify(map, context))},
               widths);
    }
    // Transient flips at several strike cycles; each faulty run uses a
    // fresh accelerator so the strike cycle is relative to run start.
    for (const std::int64_t strike : {0ll, 20ll, 45ll, 60ll, 90ll}) {
      FaultSpec flip;
      flip.kind = FaultKind::kTransientFlip;
      flip.pe = PeCoord{4, 9};
      flip.signal = MacSignal::kAdderOut;
      flip.bit = 8;
      flip.at_cycle = strike;
      FiRunner fresh(config);
      const RunResult faulty =
          fresh.RunFaulty(workload, dataflow, {&flip, 1});
      const CorruptionMap map =
          ExtractCorruption(golden.output, faulty.output);
      PrintRow({"transient flip bit8", std::to_string(strike),
                std::to_string(map.count()),
                ToString(Classify(map, context))},
               widths);
    }
    std::cout << "\nA transient flip corrupts at most one element of the "
                 "column (or nothing when it\nstrikes preload/DMA/drain "
                 "cycles); the permanent fault corrupts the full column\n— "
                 "why Rech et al.'s transient classification does not carry "
                 "over to stuck-at\nfaults.\n\n";
  }

  std::cout << "=== 3. injection signal (fault site within the MAC) ===\n\n";
  {
    const std::vector<std::size_t> widths = {16, 3, 10, 26};
    PrintRow({"signal", "DF", "corrupted", "observed class"}, widths);
    PrintRule(widths);
    for (const Dataflow df :
         {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
      const RunResult df_golden = runner.RunGolden(workload, df);
      const ClassifyContext df_context =
          MakeClassifyContext(workload, config, df);
      for (const MacSignal signal :
           {MacSignal::kAdderOut, MacSignal::kMulOut,
            MacSignal::kWeightOperand, MacSignal::kActForward,
            MacSignal::kSouthForward}) {
        FaultSpec fault;
        fault.pe = PeCoord{4, 9};
        fault.signal = signal;
        fault.bit = signal == MacSignal::kAdderOut ? 8 : 2;
        fault.polarity = StuckPolarity::kStuckAt1;
        const RunResult faulty = runner.RunFaulty(workload, df, {&fault, 1});
        const CorruptionMap map =
            ExtractCorruption(df_golden.output, faulty.output);
        PrintRow({ToString(signal), ToString(df),
                  std::to_string(map.count()),
                  ToString(Classify(map, df_context))},
                 widths);
      }
    }
    std::cout << "\nOperand/forwarding faults spread corruption across "
                 "regions (activations carry\neast, so a stuck forward "
                 "poisons every column downstream) — patterns the\npaper's "
                 "adder-output model does not need to cover, but that this "
                 "framework can\nexplore.\n";
  }
  return 0;
}
