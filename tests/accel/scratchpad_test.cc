#include "accel/scratchpad.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace saffire {
namespace {

TEST(ScratchpadTest, ReadWriteRoundTrip) {
  Scratchpad spad(32, 16);
  spad.Write(0, 0, -5);
  spad.Write(31, 15, 7);
  EXPECT_EQ(spad.Read(0, 0), -5);
  EXPECT_EQ(spad.Read(31, 15), 7);
  EXPECT_EQ(spad.Read(10, 10), 0);
}

TEST(ScratchpadTest, BoundsChecked) {
  Scratchpad spad(32, 16);
  EXPECT_THROW(spad.Read(32, 0), std::invalid_argument);
  EXPECT_THROW(spad.Read(0, 16), std::invalid_argument);
  EXPECT_THROW(spad.Write(-1, 0, 0), std::invalid_argument);
}

TEST(ScratchpadTest, BlockRoundTrip) {
  Scratchpad spad(32, 16);
  const auto block = Int8Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  spad.WriteBlock(5, block);
  EXPECT_EQ(spad.ReadBlock(5, 2, 3), block);
  // Columns beyond the block stay zero.
  EXPECT_EQ(spad.Read(5, 3), 0);
}

TEST(ScratchpadTest, BlockBoundsChecked) {
  Scratchpad spad(8, 4);
  EXPECT_THROW(spad.WriteBlock(7, Int8Tensor({2, 2})), std::invalid_argument);
  EXPECT_THROW(spad.WriteBlock(0, Int8Tensor({2, 5})), std::invalid_argument);
  EXPECT_THROW(spad.ReadBlock(7, 2, 2), std::invalid_argument);
}

TEST(ScratchpadTest, ClearZeroes) {
  Scratchpad spad(4, 4);
  spad.Write(1, 1, 9);
  spad.Clear();
  EXPECT_EQ(spad.Read(1, 1), 0);
}

TEST(AccumulatorMemTest, OverwriteAndAccumulate) {
  AccumulatorMem acc(16, 4);
  const auto block = Int32Tensor::FromRows({{10, 20}, {30, 40}});
  acc.WriteBlock(2, block, /*accumulate=*/false);
  EXPECT_EQ(acc.Read(2, 0), 10);
  acc.WriteBlock(2, block, /*accumulate=*/true);
  EXPECT_EQ(acc.Read(2, 0), 20);
  EXPECT_EQ(acc.Read(3, 1), 80);
  acc.WriteBlock(2, block, /*accumulate=*/false);
  EXPECT_EQ(acc.Read(2, 0), 10);
}

TEST(AccumulatorMemTest, ReadBlock) {
  AccumulatorMem acc(16, 4);
  const auto block = Int32Tensor::FromRows({{1, 2}, {3, 4}});
  acc.WriteBlock(0, block, false);
  EXPECT_EQ(acc.ReadBlock(0, 2, 2), block);
}

TEST(AccumulatorMemTest, BoundsChecked) {
  AccumulatorMem acc(8, 4);
  EXPECT_THROW(acc.Read(8, 0), std::invalid_argument);
  EXPECT_THROW(acc.WriteBlock(7, Int32Tensor({2, 2}), false),
               std::invalid_argument);
  EXPECT_THROW(acc.ReadBlock(0, 1, 5), std::invalid_argument);
}

TEST(RequantizeTest, IdentityWithoutShift) {
  EXPECT_EQ(Requantize(5, Activation::kNone, 0), 5);
  EXPECT_EQ(Requantize(-5, Activation::kNone, 0), -5);
}

TEST(RequantizeTest, SaturatesToInt8) {
  EXPECT_EQ(Requantize(1000, Activation::kNone, 0), 127);
  EXPECT_EQ(Requantize(-1000, Activation::kNone, 0), -128);
}

TEST(RequantizeTest, ReluClampsNegative) {
  EXPECT_EQ(Requantize(-77, Activation::kRelu, 0), 0);
  EXPECT_EQ(Requantize(77, Activation::kRelu, 0), 77);
}

TEST(RequantizeTest, RoundingShiftHalfAwayFromZero) {
  EXPECT_EQ(Requantize(6, Activation::kNone, 2), 2);   // 1.5 → 2
  EXPECT_EQ(Requantize(5, Activation::kNone, 2), 1);   // 1.25 → 1
  EXPECT_EQ(Requantize(-6, Activation::kNone, 2), -2); // −1.5 → −2
  EXPECT_EQ(Requantize(-5, Activation::kNone, 2), -1);
  EXPECT_EQ(Requantize(256, Activation::kNone, 4), 16);
}

TEST(RequantizeTest, ReluAppliesBeforeShift) {
  EXPECT_EQ(Requantize(-256, Activation::kRelu, 4), 0);
}

TEST(RequantizeTest, RejectsBadShift) {
  EXPECT_THROW(Requantize(0, Activation::kNone, -1), std::invalid_argument);
  EXPECT_THROW(Requantize(0, Activation::kNone, 32), std::invalid_argument);
}

class RequantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RequantizeSweep, ShiftMatchesFloatRounding) {
  const int shift = GetParam();
  for (std::int32_t v = -4000; v <= 4000; v += 37) {
    const double scaled = static_cast<double>(v) / (1 << shift);
    const double rounded =
        scaled >= 0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
    const double clamped = std::clamp(rounded, -128.0, 127.0);
    EXPECT_EQ(Requantize(v, Activation::kNone, shift),
              static_cast<std::int8_t>(clamped))
        << "v=" << v << " shift=" << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, RequantizeSweep,
                         ::testing::Values(0, 1, 2, 4, 8));

}  // namespace
}  // namespace saffire
