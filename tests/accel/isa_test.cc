#include "accel/isa.h"

#include <gtest/gtest.h>

namespace saffire {
namespace {

TEST(DisassembleTest, Config) {
  const Instruction instr =
      ConfigOp{Dataflow::kOutputStationary, Activation::kRelu, 6};
  EXPECT_EQ(Disassemble(instr), "config dataflow=OS act=relu shift=6");
}

TEST(DisassembleTest, Mvin) {
  const Instruction instr = MvinOp{0x100, 16, 32, 8, 4};
  EXPECT_EQ(Disassemble(instr), "mvin dram=0x100 stride=16 spad=32 8x4");
}

TEST(DisassembleTest, Preload) {
  const Instruction instr = PreloadOp{64, 16, 12};
  EXPECT_EQ(Disassemble(instr), "preload spad=64 16x12");
}

TEST(DisassembleTest, ComputeWsAndOs) {
  ComputeOp ws;
  ws.a_spad_row = 0;
  ws.a_rows = 100;
  ws.a_cols = 16;
  ws.acc_row = 0;
  ws.accumulate = true;
  EXPECT_EQ(Disassemble(Instruction{ws}), "compute a_spad=0 100x16 acc=0 +=");

  ComputeOp os = ws;
  os.accumulate = false;
  os.b_spad_row = 200;
  os.b_rows = 16;
  os.b_cols = 9;
  EXPECT_EQ(Disassemble(Instruction{os}),
            "compute a_spad=0 100x16 acc=0 = b_spad=200 16x9");
}

TEST(DisassembleTest, MvoutAndFence) {
  EXPECT_EQ(Disassemble(Instruction{Mvout32Op{0x40, 8, 0, 4, 4}}),
            "mvout32 dram=0x40 stride=8 acc=0 4x4");
  EXPECT_EQ(Disassemble(Instruction{Mvout8Op{0x40, 8, 0, 4, 4}}),
            "mvout8 dram=0x40 stride=8 acc=0 4x4");
  EXPECT_EQ(Disassemble(Instruction{FenceOp{}}), "fence");
}

TEST(ProgramTest, CollectsAndDisassembles) {
  Program program;
  EXPECT_TRUE(program.empty());
  program.Push(FenceOp{});
  program.Push(PreloadOp{0, 2, 2});
  EXPECT_EQ(program.size(), 2u);
  const std::string listing = program.Disassembly();
  EXPECT_NE(listing.find("0: fence"), std::string::npos);
  EXPECT_NE(listing.find("1: preload spad=0 2x2"), std::string::npos);
}

TEST(ActivationTest, Names) {
  EXPECT_EQ(ToString(Activation::kNone), "none");
  EXPECT_EQ(ToString(Activation::kRelu), "relu");
}

}  // namespace
}  // namespace saffire
