#include "accel/controller.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig SmallConfig() {
  AccelConfig config;
  config.array.rows = 4;
  config.array.cols = 4;
  config.spad_rows = 64;
  config.acc_rows = 32;
  config.max_compute_rows = 16;
  config.dram_bytes = 1 << 16;
  return config;
}

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-50, 50));
  }
  return t;
}

TEST(AccelConfigTest, ValidateCatchesInconsistencies) {
  AccelConfig config = SmallConfig();
  EXPECT_NO_THROW(config.Validate());
  config.max_compute_rows = 64;  // A region + B block no longer fit spad
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = SmallConfig();
  config.acc_rows = 8;  // smaller than max_compute_rows
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(ControllerTest, MvinMovesDramToScratchpad) {
  Accelerator accel(SmallConfig());
  const auto m = Int8Tensor::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  accel.dram().WriteMatrix(0, m);
  accel.Execute(MvinOp{0, 4, 10, 2, 4});
  EXPECT_EQ(accel.scratchpad().ReadBlock(10, 2, 4), m);
  EXPECT_EQ(accel.stats().mvin_rows, 2);
  EXPECT_EQ(accel.cycles(), 2);  // one row per cycle
}

TEST(ControllerTest, MvinHonoursStride) {
  Accelerator accel(SmallConfig());
  // A 2×2 sub-block of a row-major 2×4 DRAM matrix, starting at column 1.
  const auto m = Int8Tensor::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  accel.dram().WriteMatrix(0, m);
  accel.Execute(MvinOp{1, 4, 0, 2, 2});
  EXPECT_EQ(accel.scratchpad().Read(0, 0), 2);
  EXPECT_EQ(accel.scratchpad().Read(0, 1), 3);
  EXPECT_EQ(accel.scratchpad().Read(1, 0), 6);
  EXPECT_EQ(accel.scratchpad().Read(1, 1), 7);
}

TEST(ControllerTest, WsPreloadComputeMvout32) {
  Accelerator accel(SmallConfig());
  Rng rng(1);
  const auto a = RandomInt8(rng, 4, 4);
  const auto b = RandomInt8(rng, 4, 4);
  accel.dram().WriteMatrix(0, a);
  accel.dram().WriteMatrix(64, b);

  Program program;
  program.Push(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  program.Push(MvinOp{64, 4, 32, 4, 4});  // B → spad row 32
  program.Push(PreloadOp{32, 4, 4});
  program.Push(MvinOp{0, 4, 0, 4, 4});    // A → spad row 0
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;
  program.Push(compute);
  program.Push(Mvout32Op{128, 4, 0, 4, 4});
  accel.Execute(program);

  EXPECT_EQ(accel.dram().ReadInt32Matrix(128, 4, 4), GemmRef(a, b));
  EXPECT_EQ(accel.stats().computes, 1);
  EXPECT_EQ(accel.stats().preloads, 1);
  EXPECT_EQ(accel.stats().instructions, 6);
}

TEST(ControllerTest, OsComputeWithInlineB) {
  Accelerator accel(SmallConfig());
  Rng rng(2);
  const auto a = RandomInt8(rng, 4, 4);
  const auto b = RandomInt8(rng, 4, 4);
  accel.dram().WriteMatrix(0, a);
  accel.dram().WriteMatrix(64, b);

  Program program;
  program.Push(ConfigOp{Dataflow::kOutputStationary, Activation::kNone, 0});
  program.Push(MvinOp{0, 4, 0, 4, 4});
  program.Push(MvinOp{64, 4, 32, 4, 4});
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;
  compute.b_spad_row = 32;
  compute.b_rows = 4;
  compute.b_cols = 4;
  program.Push(compute);
  program.Push(Mvout32Op{128, 4, 0, 4, 4});
  accel.Execute(program);

  EXPECT_EQ(accel.dram().ReadInt32Matrix(128, 4, 4), GemmRef(a, b));
}

TEST(ControllerTest, ComputeAccumulateFlagAddsInAccumulator) {
  Accelerator accel(SmallConfig());
  const auto a = Int8Tensor::Full({4, 4}, 1);
  const auto b = Int8Tensor::Full({4, 4}, 1);
  accel.dram().WriteMatrix(0, a);
  accel.dram().WriteMatrix(64, b);

  Program program;
  program.Push(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  program.Push(MvinOp{64, 4, 32, 4, 4});
  program.Push(PreloadOp{32, 4, 4});
  program.Push(MvinOp{0, 4, 0, 4, 4});
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;
  program.Push(compute);
  compute.accumulate = true;
  program.Push(compute);
  accel.Execute(program);

  EXPECT_EQ(accel.accumulator().Read(0, 0), 8);  // 4 + 4
}

TEST(ControllerTest, Mvout8RequantizesWithReluAndShift) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kWeightStationary, Activation::kRelu, 2});
  accel.accumulator().WriteBlock(
      0, Int32Tensor::FromRows({{10, -10}, {1000, 6}}), false);
  accel.Execute(Mvout8Op{0, 2, 0, 2, 2});
  EXPECT_EQ(accel.dram().ReadInt8(0), 3);    // round(10/4) = 3 (2.5 away-from-0)
  EXPECT_EQ(accel.dram().ReadInt8(1), 0);    // relu
  EXPECT_EQ(accel.dram().ReadInt8(2), 127);  // saturate
  EXPECT_EQ(accel.dram().ReadInt8(3), 2);    // round(6/4) = 2
}

TEST(ControllerTest, ComputeWithoutPreloadThrows) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;
  EXPECT_THROW(accel.Execute(compute), std::invalid_argument);
}

TEST(ControllerTest, PreloadRejectedUnderOs) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kOutputStationary, Activation::kNone, 0});
  EXPECT_THROW(accel.Execute(PreloadOp{0, 4, 4}), std::invalid_argument);
}

TEST(ControllerTest, OversizedComputeRejected) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  accel.Execute(MvinOp{0, 4, 32, 4, 4});
  accel.Execute(PreloadOp{32, 4, 4});
  ComputeOp compute;
  compute.a_rows = 17;  // > max_compute_rows (16)
  compute.a_cols = 4;
  EXPECT_THROW(accel.Execute(compute), std::invalid_argument);
}

TEST(ControllerTest, OsComputeRowLimitIsArrayRows) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kOutputStationary, Activation::kNone, 0});
  ComputeOp compute;
  compute.a_rows = 5;  // > array rows (4)
  compute.a_cols = 4;
  compute.b_spad_row = 32;
  compute.b_rows = 4;
  compute.b_cols = 4;
  EXPECT_THROW(accel.Execute(compute), std::invalid_argument);
}

TEST(ControllerTest, MismatchedInnerDimensionRejected) {
  Accelerator accel(SmallConfig());
  accel.Execute(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  accel.Execute(PreloadOp{32, 3, 4});
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;  // preloaded B has 3 rows
  EXPECT_THROW(accel.Execute(compute), std::invalid_argument);
}

TEST(ControllerTest, DoubleBufferedPreloadOverlapsPreviousStream) {
  // Two preload+compute pairs: the second preload hides behind the first
  // compute's stream when double buffering is on.
  const auto run_program = [](bool double_buffered) {
    AccelConfig config = SmallConfig();
    config.double_buffered_weights = double_buffered;
    Accelerator accel(config);
    const auto ones = Int8Tensor::Full({4, 4}, 1);
    accel.dram().WriteMatrix(0, ones);
    Program program;
    program.Push(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
    for (int pass = 0; pass < 2; ++pass) {
      program.Push(MvinOp{0, 4, 32, 4, 4});
      program.Push(PreloadOp{32, 4, 4});
      program.Push(MvinOp{0, 4, 0, 4, 4});
      ComputeOp compute;
      compute.a_rows = 4;
      compute.a_cols = 4;
      program.Push(compute);
    }
    accel.Execute(program);
    return accel.cycles();
  };
  const std::int64_t buffered = run_program(true);
  const std::int64_t single_bank = run_program(false);
  // The first compute pays the full 4-cycle preload either way; the second
  // pays nothing when buffered (the previous 4+4+4−2 = 10-cycle stream
  // exceeds the 4-cycle preload), saving exactly one preload.
  EXPECT_EQ(single_bank - buffered, 4);
}

TEST(ControllerTest, ConfigResetsOverlapBudget) {
  // Timing must not depend on what ran before: two identical programs on
  // one accelerator consume identical cycles.
  Accelerator accel(SmallConfig());
  const auto ones = Int8Tensor::Full({4, 4}, 1);
  accel.dram().WriteMatrix(0, ones);
  Program program;
  program.Push(ConfigOp{Dataflow::kWeightStationary, Activation::kNone, 0});
  program.Push(MvinOp{0, 4, 32, 4, 4});
  program.Push(PreloadOp{32, 4, 4});
  program.Push(MvinOp{0, 4, 0, 4, 4});
  ComputeOp compute;
  compute.a_rows = 4;
  compute.a_cols = 4;
  program.Push(compute);

  accel.Execute(program);
  const std::int64_t first = accel.cycles();
  accel.Execute(program);
  EXPECT_EQ(accel.cycles() - first, first);
}

TEST(ControllerTest, FenceIsNoOpButCounted) {
  Accelerator accel(SmallConfig());
  accel.Execute(FenceOp{});
  EXPECT_EQ(accel.stats().instructions, 1);
  EXPECT_EQ(accel.cycles(), 0);
}

}  // namespace
}  // namespace saffire
