// Input-stationary support in the driver: tiled IS GEMM correctness and
// the IS tile plan the predictor relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/driver.h"
#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 256;
  config.spad_rows = 512;
  config.acc_rows = 256;
  config.dram_bytes = 8 << 20;
  return config;
}

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-30, 30));
  }
  return t;
}

TEST(DriverIsPlanTest, PinsMToColumnsKToRows) {
  const auto grid = Driver::PlanTiles(40, 1000, 33, TestConfig(),
                                      Dataflow::kInputStationary);
  EXPECT_EQ(grid.tile_m(), 16);    // array columns
  EXPECT_EQ(grid.tile_k(), 16);    // array rows
  EXPECT_EQ(grid.tile_n(), 256);   // weight stream chunk
  EXPECT_EQ(grid.m_tiles(), 3);
  EXPECT_EQ(grid.k_tiles(), 3);
  EXPECT_EQ(grid.n_tiles(), 4);
}

TEST(DriverIsTest, ConfigOpRejectsIsAtIsaLevel) {
  Accelerator accel(TestConfig());
  EXPECT_THROW(
      accel.Execute(ConfigOp{Dataflow::kInputStationary,
                             Activation::kNone, 0}),
      std::invalid_argument);
}

class DriverIsGemmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DriverIsGemmTest, TiledIsGemmMatchesReference) {
  const auto [m, k, n] = GetParam();
  Accelerator accel(TestConfig());
  Driver driver(accel);
  Rng rng(static_cast<std::uint64_t>(m * 10000 + k * 100 + n));
  const auto a = RandomInt8(rng, m, k);
  const auto b = RandomInt8(rng, k, n);
  ExecOptions options;
  options.dataflow = Dataflow::kInputStationary;
  EXPECT_EQ(driver.Gemm(a, b, options), GemmRef(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DriverIsGemmTest,
                         ::testing::Values(std::tuple{16, 16, 16},
                                           std::tuple{112, 112, 112},
                                           std::tuple{1, 1, 1},
                                           std::tuple{17, 33, 29},
                                           std::tuple{16, 16, 300}));

TEST(DriverIsTest, AllThreeDataflowsAgree) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  Rng rng(5);
  const auto a = RandomInt8(rng, 48, 32);
  const auto b = RandomInt8(rng, 32, 48);
  ExecOptions ws;
  ws.dataflow = Dataflow::kWeightStationary;
  ExecOptions os;
  os.dataflow = Dataflow::kOutputStationary;
  ExecOptions is;
  is.dataflow = Dataflow::kInputStationary;
  const auto ws_result = driver.Gemm(a, b, ws);
  EXPECT_EQ(driver.Gemm(a, b, os), ws_result);
  EXPECT_EQ(driver.Gemm(a, b, is), ws_result);
}

TEST(DriverIsTest, QuantizedPathWorks) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  const auto a = Int8Tensor::Full({4, 8}, 2);
  const auto b = Int8Tensor::Full({8, 4}, 3);  // C = 48
  ExecOptions options;
  options.dataflow = Dataflow::kInputStationary;
  options.output_shift = 4;
  const auto c = driver.GemmQuantized(a, b, options);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.flat(i), 3);
  }
}

}  // namespace
}  // namespace saffire
