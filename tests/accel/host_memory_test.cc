#include "accel/host_memory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(HostMemoryTest, Int8RoundTrip) {
  HostMemory mem(1024);
  mem.WriteInt8(0, -7);
  mem.WriteInt8(1023, 42);
  EXPECT_EQ(mem.ReadInt8(0), -7);
  EXPECT_EQ(mem.ReadInt8(1023), 42);
}

TEST(HostMemoryTest, Int32RoundTripLittleEndian) {
  HostMemory mem(1024);
  mem.WriteInt32(4, -123456789);
  EXPECT_EQ(mem.ReadInt32(4), -123456789);
  // Little-endian byte order.
  mem.WriteInt32(8, 0x01020304);
  EXPECT_EQ(mem.ReadInt8(8), 0x04);
  EXPECT_EQ(mem.ReadInt8(11), 0x01);
}

TEST(HostMemoryTest, BoundsChecked) {
  HostMemory mem(64);
  EXPECT_THROW(mem.ReadInt8(64), std::invalid_argument);
  EXPECT_THROW(mem.ReadInt8(-1), std::invalid_argument);
  EXPECT_THROW(mem.WriteInt32(61, 0), std::invalid_argument);
  EXPECT_THROW(mem.ReadInt32(64), std::invalid_argument);
}

TEST(HostMemoryTest, AlignmentEnforcedForInt32) {
  HostMemory mem(64);
  EXPECT_THROW(mem.ReadInt32(2), std::invalid_argument);
  EXPECT_THROW(mem.WriteInt32(6, 1), std::invalid_argument);
}

TEST(HostMemoryTest, MatrixRoundTrip) {
  HostMemory mem(4096);
  const auto m8 = Int8Tensor::FromRows({{1, -2, 3}, {4, 5, -6}});
  EXPECT_EQ(mem.WriteMatrix(0, m8), 6);
  EXPECT_EQ(mem.ReadInt8Matrix(0, 2, 3), m8);

  const auto m32 = Int32Tensor::FromRows({{100000, -2}, {3, 4}});
  EXPECT_EQ(mem.WriteMatrix(64, m32), 16);
  EXPECT_EQ(mem.ReadInt32Matrix(64, 2, 2), m32);
}

TEST(HostMemoryTest, AllocatorAlignsAndExhausts) {
  HostMemory mem(256);
  const auto a = mem.Allocate(10, 64);
  const auto b = mem.Allocate(10, 64);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 64);
  EXPECT_THROW(mem.Allocate(1000), std::invalid_argument);
  mem.FreeAll();
  EXPECT_EQ(mem.Allocate(10, 64), 0);
}

TEST(HostMemoryTest, AllocatorRejectsBadArgs) {
  HostMemory mem(256);
  EXPECT_THROW(mem.Allocate(0), std::invalid_argument);
  EXPECT_THROW(mem.Allocate(8, 3), std::invalid_argument);
}

TEST(HostMemoryTest, RejectsBadSizes) {
  EXPECT_THROW(HostMemory(0), std::invalid_argument);
  EXPECT_THROW(HostMemory(-5), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
