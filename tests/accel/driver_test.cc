#include "accel/driver.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace saffire {
namespace {

AccelConfig PaperConfig() {
  AccelConfig config;  // 16×16 INT8 array
  config.max_compute_rows = 256;
  config.spad_rows = 512;
  config.acc_rows = 256;
  config.dram_bytes = 8 << 20;
  return config;
}

Int8Tensor RandomInt8(Rng& rng, std::vector<std::int64_t> shape) {
  Int8Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-30, 30));
  }
  return t;
}

TEST(DriverPlanTest, WsPlanStreamsMAndTilesKN) {
  const auto config = PaperConfig();
  const auto grid = Driver::PlanTiles(1000, 40, 33, config,
                                      Dataflow::kWeightStationary);
  EXPECT_EQ(grid.tile_m(), 256);
  EXPECT_EQ(grid.tile_n(), 16);
  EXPECT_EQ(grid.tile_k(), 16);
  EXPECT_EQ(grid.m_tiles(), 4);
  EXPECT_EQ(grid.n_tiles(), 3);
  EXPECT_EQ(grid.k_tiles(), 3);
}

TEST(DriverPlanTest, OsPlanTilesAllThreeAtArraySize) {
  const auto config = PaperConfig();
  const auto grid =
      Driver::PlanTiles(40, 40, 40, config, Dataflow::kOutputStationary);
  EXPECT_EQ(grid.tile_m(), 16);
  EXPECT_EQ(grid.tile_n(), 16);
  EXPECT_EQ(grid.tile_k(), 16);
  EXPECT_EQ(grid.total_tiles(), 27);
}

TEST(DriverPlanTest, Paper112GemmIs7x7Tiles) {
  const auto config = PaperConfig();
  const auto os_grid =
      Driver::PlanTiles(112, 112, 112, config, Dataflow::kOutputStationary);
  EXPECT_EQ(os_grid.m_tiles(), 7);
  EXPECT_EQ(os_grid.n_tiles(), 7);
  const auto ws_grid =
      Driver::PlanTiles(112, 112, 112, config, Dataflow::kWeightStationary);
  EXPECT_EQ(ws_grid.n_tiles(), 7);
  EXPECT_EQ(ws_grid.k_tiles(), 7);
  EXPECT_EQ(ws_grid.m_tiles(), 1);  // 112 rows stream in one chunk
}

struct GemmCase {
  Dataflow dataflow;
  std::int64_t m, k, n;
};

class DriverGemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(DriverGemmTest, TiledGemmMatchesReference) {
  const auto& tc = GetParam();
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  Rng rng(static_cast<std::uint64_t>(tc.m * 10000 + tc.k * 100 + tc.n));
  const auto a = RandomInt8(rng, {tc.m, tc.k});
  const auto b = RandomInt8(rng, {tc.k, tc.n});
  ExecOptions options;
  options.dataflow = tc.dataflow;
  EXPECT_EQ(driver.Gemm(a, b, options), GemmRef(a, b));
}

std::vector<GemmCase> GemmCases() {
  std::vector<GemmCase> cases;
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    cases.push_back({dataflow, 16, 16, 16});   // untiled (Table I)
    cases.push_back({dataflow, 112, 112, 112}); // RQ3 tiled GEMM
    cases.push_back({dataflow, 1, 1, 1});
    cases.push_back({dataflow, 17, 16, 16});   // ragged M
    cases.push_back({dataflow, 16, 17, 16});   // ragged K
    cases.push_back({dataflow, 16, 16, 17});   // ragged N
    cases.push_back({dataflow, 33, 45, 29});   // ragged everywhere
    cases.push_back({dataflow, 300, 16, 16});  // M beyond max_compute_rows
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DriverGemmTest,
                         ::testing::ValuesIn(GemmCases()));

TEST(DriverTest, GemmQuantizedAppliesConfiguredPostProcessing) {
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  const auto a = Int8Tensor::Full({4, 8}, 2);
  const auto b = Int8Tensor::Full({8, 4}, 3);  // C = 48 everywhere
  ExecOptions options;
  options.output_shift = 4;  // 48/16 = 3
  const auto c = driver.GemmQuantized(a, b, options);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.flat(i), 3);
  }
}

TEST(DriverTest, GemmQuantizedRelu) {
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  const auto a = Int8Tensor::Full({2, 2}, -1);
  const auto b = Int8Tensor::Full({2, 2}, 1);  // C = −2 everywhere
  ExecOptions options;
  options.activation = Activation::kRelu;
  const auto c = driver.GemmQuantized(a, b, options);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.flat(i), 0);
  }
}

TEST(DriverTest, ConvMatchesReferenceSmallKernel) {
  // Table I: 3×3×3×3 kernel, 16×16 input — the untiled conv configuration.
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  ConvParams p;
  p.in_channels = 3;
  p.height = 16;
  p.width = 16;
  p.out_channels = 3;
  p.kernel_h = 3;
  p.kernel_w = 3;
  Rng rng(5);
  const auto input = RandomInt8(rng, {1, 3, 16, 16});
  const auto kernel = RandomInt8(rng, {3, 3, 3, 3});
  EXPECT_EQ(driver.Conv(input, kernel, p, ExecOptions{}),
            ConvRef(input, kernel, p));
}

TEST(DriverTest, ConvMatchesReferenceTiledKernel) {
  // Table I: 3×3×3×8 kernel — CRS = 27 > 16 forces K-dimension tiling.
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  ConvParams p;
  p.in_channels = 3;
  p.height = 16;
  p.width = 16;
  p.out_channels = 8;
  p.kernel_h = 3;
  p.kernel_w = 3;
  Rng rng(6);
  const auto input = RandomInt8(rng, {1, 3, 16, 16});
  const auto kernel = RandomInt8(rng, {8, 3, 3, 3});
  ExecOptions options;
  options.dataflow = Dataflow::kOutputStationary;
  EXPECT_EQ(driver.Conv(input, kernel, p, options),
            ConvRef(input, kernel, p));
}

TEST(DriverTest, LastProgramIsAuditable) {
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  (void)driver.Gemm(a, b, ExecOptions{});
  const Program& program = driver.last_program();
  // Untiled WS GEMM: config, mvin B, preload, mvin A, compute, mvout.
  EXPECT_EQ(program.size(), 6u);
  const std::string listing = program.Disassembly();
  EXPECT_NE(listing.find("config dataflow=WS"), std::string::npos);
  EXPECT_NE(listing.find("preload"), std::string::npos);
  EXPECT_NE(listing.find("mvout32"), std::string::npos);
}

TEST(DriverTest, StatsAccumulateAcrossOperations) {
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  (void)driver.Gemm(a, b, ExecOptions{});
  const auto computes_after_one = accel.stats().computes;
  (void)driver.Gemm(a, b, ExecOptions{});
  EXPECT_EQ(accel.stats().computes, 2 * computes_after_one);
  EXPECT_GT(accel.cycles(), 0);
}

TEST(DriverTest, RejectsMismatchedOperands) {
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  EXPECT_THROW(
      driver.Gemm(Int8Tensor({4, 5}), Int8Tensor({6, 4}), ExecOptions{}),
      std::invalid_argument);
}

// Cross-dataflow consistency: both dataflows must produce identical results
// for identical operations (they share the golden semantics even though
// their cycle behaviour differs).
class CrossDataflowTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CrossDataflowTest, WsAndOsAgree) {
  const auto [m, k, n] = GetParam();
  Accelerator accel(PaperConfig());
  Driver driver(accel);
  Rng rng(static_cast<std::uint64_t>(m + k + n));
  const auto a = RandomInt8(rng, {m, k});
  const auto b = RandomInt8(rng, {k, n});
  ExecOptions ws;
  ws.dataflow = Dataflow::kWeightStationary;
  ExecOptions os;
  os.dataflow = Dataflow::kOutputStationary;
  EXPECT_EQ(driver.Gemm(a, b, ws), driver.Gemm(a, b, os));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CrossDataflowTest,
                         ::testing::Values(std::tuple{16, 16, 16},
                                           std::tuple{48, 32, 48},
                                           std::tuple{7, 21, 35}));

}  // namespace
}  // namespace saffire
