// Regression tests for non-square arrays. A fuzzed campaign once tripped
// the scratchpad width limit: on a rows-heavy array the WS plan produced
// A-tiles wider than a scratchpad row (whose width is the array column
// count). The tile plan must bound the reduction block by
// min(rows, cols); these tests pin the fix across the full pipeline.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fi/runner.h"
#include "patterns/predictor.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig NonSquare(std::int32_t rows, std::int32_t cols) {
  AccelConfig config;
  config.array.rows = rows;
  config.array.cols = cols;
  config.max_compute_rows = 64;
  config.acc_rows = 64;
  config.spad_rows = 64 + std::max(rows, cols);
  config.dram_bytes = 1 << 20;
  return config;
}

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-30, 30));
  }
  return t;
}

TEST(NonSquareDriverTest, RowsHeavyPlanBoundsReductionBlock) {
  const auto config = NonSquare(8, 4);
  const auto ws =
      Driver::PlanTiles(20, 20, 20, config, Dataflow::kWeightStationary);
  EXPECT_EQ(ws.tile_k(), 4);  // min(rows=8, cols=4): scratchpad row width
  EXPECT_EQ(ws.tile_n(), 4);
  const auto is =
      Driver::PlanTiles(20, 20, 20, config, Dataflow::kInputStationary);
  EXPECT_EQ(is.tile_k(), 4);
  EXPECT_EQ(is.tile_m(), 4);
}

TEST(NonSquareDriverTest, ColsHeavyPlanUsesAllRows) {
  const auto config = NonSquare(4, 8);
  const auto ws =
      Driver::PlanTiles(20, 20, 20, config, Dataflow::kWeightStationary);
  EXPECT_EQ(ws.tile_k(), 4);  // min(rows=4, cols=8)
  EXPECT_EQ(ws.tile_n(), 8);
  const auto os =
      Driver::PlanTiles(20, 20, 20, config, Dataflow::kOutputStationary);
  EXPECT_EQ(os.tile_m(), 4);
  EXPECT_EQ(os.tile_k(), 8);  // A-tile width = scratchpad width
}

class NonSquareGemmTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NonSquareGemmTest, AllDataflowsMatchReference) {
  const auto [rows, cols] = GetParam();
  Accelerator accel(NonSquare(static_cast<std::int32_t>(rows),
                              static_cast<std::int32_t>(cols)));
  Driver driver(accel);
  Rng rng(static_cast<std::uint64_t>(rows * 100 + cols));
  const auto a = RandomInt8(rng, 19, 23);
  const auto b = RandomInt8(rng, 23, 17);
  const auto expected = GemmRef(a, b);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    ExecOptions options;
    options.dataflow = dataflow;
    EXPECT_EQ(driver.Gemm(a, b, options), expected)
        << rows << "x" << cols << " " << ToString(dataflow);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, NonSquareGemmTest,
                         ::testing::Values(std::pair{8, 4}, std::pair{4, 8},
                                           std::pair{16, 2}, std::pair{2, 16},
                                           std::pair{3, 5}));

TEST(NonSquareDriverTest, PredictionStaysExactOnRowsHeavyArray) {
  // The original failure path: WS campaign on an 8×4 array.
  const auto config = NonSquare(8, 4);
  WorkloadSpec workload;
  workload.name = "gemm-12";
  workload.m = workload.k = workload.n = 12;
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, Dataflow::kWeightStationary);
  const auto context =
      MakeClassifyContext(workload, config, Dataflow::kWeightStationary);
  for (const PeCoord site : AllPeCoords(config.array)) {
    const FaultSpec fault = StuckAtAdder(site, 8, StuckPolarity::kStuckAt1);
    const auto faulty =
        runner.RunFaulty(workload, Dataflow::kWeightStationary, {&fault, 1});
    const auto map = ExtractCorruption(golden.output, faulty.output);
    const auto prediction = PredictPattern(
        workload, config, Dataflow::kWeightStationary, fault);
    EXPECT_EQ(map.corrupted, prediction.coords) << fault.ToString();
    EXPECT_EQ(Classify(map, context), prediction.pattern)
        << fault.ToString();
  }
}

}  // namespace
}  // namespace saffire
