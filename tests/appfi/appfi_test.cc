#include "appfi/appfi.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "fi/runner.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

TEST(PerturbModeTest, Names) {
  EXPECT_EQ(ToString(PerturbMode::kSetBit), "set-bit");
  EXPECT_EQ(ToString(PerturbMode::kAddDelta), "add-delta");
}

TEST(InjectPatternTest, PerturbsExactlyPredictedCoords) {
  const auto config = TestConfig();
  const auto workload = Gemm16x16();
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(workload, Dataflow::kOutputStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  PerturbSpec perturb;
  perturb.mode = PerturbMode::kSetBit;
  perturb.bit = 8;
  const auto faulty = InjectPattern(golden, workload, config,
                                    Dataflow::kOutputStationary, fault,
                                    perturb);
  std::int64_t differences = 0;
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      if (faulty(r, c) != golden(r, c)) {
        ++differences;
        EXPECT_EQ(r, 4);
        EXPECT_EQ(c, 9);
        EXPECT_EQ(faulty(r, c), golden(r, c) | 256);
      }
    }
  }
  EXPECT_EQ(differences, 1);
}

TEST(InjectPatternTest, MaskedFaultLeavesTensorUnchanged) {
  const auto config = TestConfig();
  auto workload = Conv16Kernel3x3x3x3();  // S·K = 9: columns 9..15 unused
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{0, 12}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      InjectPattern(golden, workload, config, Dataflow::kWeightStationary,
                    fault, PerturbSpec{});
  EXPECT_EQ(faulty, golden);
}

TEST(InjectPatternTest, RejectsWrongGoldenShape) {
  const auto config = TestConfig();
  EXPECT_THROW(
      InjectPattern(Int32Tensor({4, 4}), Gemm16x16(), config,
                    Dataflow::kWeightStationary,
                    StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1),
                    PerturbSpec{}),
      std::invalid_argument);
}

TEST(EmulateExtractionFaultTest, RejectsUnsupportedConfigurations) {
  const auto config = TestConfig();
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(Gemm16x16(), Dataflow::kWeightStationary).output;
  // Non-ones workload.
  auto random_workload = Gemm16x16();
  random_workload.weight_fill = OperandFill::kRandom;
  EXPECT_THROW(
      EmulateExtractionFault(golden, random_workload, config,
                             Dataflow::kWeightStationary,
                             StuckAtAdder(PeCoord{0, 0}, 8,
                                          StuckPolarity::kStuckAt1)),
      std::invalid_argument);
  // Stuck-at-0.
  EXPECT_THROW(
      EmulateExtractionFault(golden, Gemm16x16(), config,
                             Dataflow::kWeightStationary,
                             StuckAtAdder(PeCoord{0, 0}, 8,
                                          StuckPolarity::kStuckAt0)),
      std::invalid_argument);
  // Bit colliding with real partial sums (≤ 16).
  EXPECT_THROW(
      EmulateExtractionFault(golden, Gemm16x16(), config,
                             Dataflow::kWeightStationary,
                             StuckAtAdder(PeCoord{0, 0}, 2,
                                          StuckPolarity::kStuckAt1)),
      std::invalid_argument);
}

TEST(SampleAdderFaultTest, StaysInBoundsAndCoversArray) {
  const ArrayConfig config;
  Rng rng(7);
  std::set<std::pair<int, int>> sites;
  for (int i = 0; i < 2000; ++i) {
    const FaultSpec fault = SampleAdderFault(config, rng, 4, 20);
    EXPECT_GE(fault.pe.row, 0);
    EXPECT_LT(fault.pe.row, 16);
    EXPECT_GE(fault.pe.col, 0);
    EXPECT_LT(fault.pe.col, 16);
    EXPECT_GE(fault.bit, 4);
    EXPECT_LE(fault.bit, 20);
    EXPECT_EQ(fault.signal, MacSignal::kAdderOut);
    sites.insert({fault.pe.row, fault.pe.col});
  }
  EXPECT_GT(sites.size(), 200u);
  EXPECT_THROW(SampleAdderFault(config, rng, 8, 40), std::invalid_argument);
}

// The headline cross-validation: for every Table I workload and dataflow,
// the application-level injector reproduces the cycle-accurate faulty
// output bit-for-bit — the paper's proposed LLTFI integration, validated.
struct CrossValidateCase {
  const char* label;
  WorkloadSpec (*workload)();
  Dataflow dataflow;
};

class CrossValidateTest : public ::testing::TestWithParam<CrossValidateCase> {
};

TEST_P(CrossValidateTest, AppLevelInjectionMatchesSimulation) {
  const auto& tc = GetParam();
  const auto config = TestConfig();
  for (const PeCoord site :
       {PeCoord{0, 0}, PeCoord{4, 9}, PeCoord{15, 15}, PeCoord{7, 3}}) {
    const FaultSpec fault =
        StuckAtAdder(site, 8, StuckPolarity::kStuckAt1);
    const CrossValidation validation =
        CrossValidate(tc.workload(), config, tc.dataflow, fault);
    EXPECT_TRUE(validation.coords_match)
        << tc.label << " " << fault.ToString();
    EXPECT_TRUE(validation.values_match)
        << tc.label << " " << fault.ToString();
    EXPECT_GT(validation.simulated_pe_steps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableI, CrossValidateTest,
    ::testing::Values(
        CrossValidateCase{"gemm16_ws", &Gemm16x16,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"gemm16_os", &Gemm16x16,
                          Dataflow::kOutputStationary},
        CrossValidateCase{"gemm112_ws", &Gemm112x112,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"gemm112_os", &Gemm112x112,
                          Dataflow::kOutputStationary},
        CrossValidateCase{"conv16k3_ws", &Conv16Kernel3x3x3x3,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"conv16k8_ws", &Conv16Kernel3x3x3x8,
                          Dataflow::kWeightStationary}),
    [](const ::testing::TestParamInfo<CrossValidateCase>& param_info) {
      return std::string(param_info.param.label);
    });

}  // namespace
}  // namespace saffire
