#include "appfi/appfi.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "fi/runner.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

AppFiSpec TestSpec(Dataflow dataflow) {
  AppFiSpec spec;
  spec.accel = TestConfig();
  spec.dataflow = dataflow;
  return spec;
}

TEST(PerturbModeTest, RoundTripsEveryName) {
  for (const PerturbMode mode :
       {PerturbMode::kSetBit, PerturbMode::kClearBit, PerturbMode::kFlipBit,
        PerturbMode::kAddDelta}) {
    EXPECT_EQ(ParsePerturbMode(ToString(mode)), mode);
  }
  EXPECT_EQ(ToString(PerturbMode::kSetBit), "set-bit");
  EXPECT_EQ(ToString(PerturbMode::kAddDelta), "add-delta");
}

TEST(PerturbModeTest, RejectsUnknownNamesNamingTheChoices) {
  try {
    ParsePerturbMode("setbit");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("setbit"), std::string::npos) << message;
    EXPECT_NE(message.find("set-bit|clear-bit|flip-bit|add-delta"),
              std::string::npos)
        << message;
  }
}

TEST(PerturbForFaultTest, TracksPolarityAndBit) {
  const FaultSpec sa1 = StuckAtAdder(PeCoord{1, 2}, 9, StuckPolarity::kStuckAt1);
  const PerturbSpec set = PerturbForFault(sa1);
  EXPECT_EQ(set.mode, PerturbMode::kSetBit);
  EXPECT_EQ(set.bit, 9);

  const FaultSpec sa0 = StuckAtAdder(PeCoord{1, 2}, 3, StuckPolarity::kStuckAt0);
  EXPECT_EQ(PerturbForFault(sa0).mode, PerturbMode::kClearBit);

  FaultSpec transient = sa1;
  transient.kind = FaultKind::kTransientFlip;
  EXPECT_EQ(PerturbForFault(transient).mode, PerturbMode::kFlipBit);
}

TEST(AppFiSpecTest, JsonRoundTrip) {
  AppFiSpec spec = TestSpec(Dataflow::kOutputStationary);
  spec.perturb.mode = PerturbMode::kAddDelta;
  spec.perturb.bit = 5;
  spec.perturb.delta = -37;
  const AppFiSpec parsed = ParseAppFiSpec(spec.ToJson());
  EXPECT_EQ(parsed, spec);
}

TEST(AppFiSpecTest, RejectsUnknownKeys) {
  const AppFiSpec spec = TestSpec(Dataflow::kWeightStationary);
  std::string json = spec.ToJson();
  // Top-level typo.
  std::string top = json;
  top.insert(top.size() - 1, ",\"dataflows\":\"ws\"");
  EXPECT_THROW(ParseAppFiSpec(top), std::invalid_argument);
  // Nested perturb typo.
  const std::string needle = "\"mode\"";
  std::string nested = json;
  nested.replace(nested.find(needle), needle.size(), "\"modes\"");
  EXPECT_THROW(ParseAppFiSpec(nested), std::invalid_argument);
}

TEST(AppFiSpecTest, ValidateRejectsBadPerturbBit) {
  AppFiSpec spec = TestSpec(Dataflow::kWeightStationary);
  spec.perturb.bit = 64;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  EXPECT_THROW(NetworkFi{spec}, std::invalid_argument);
}

TEST(NetworkFiInjectTest, PerturbsExactlyPredictedCoords) {
  const auto workload = Gemm16x16();
  FiRunner runner(TestConfig());
  const auto golden =
      runner.RunGolden(workload, Dataflow::kOutputStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  AppFiSpec spec = TestSpec(Dataflow::kOutputStationary);
  spec.perturb.mode = PerturbMode::kSetBit;
  spec.perturb.bit = 8;
  const NetworkFi injector(spec);
  const auto faulty = injector.Inject(golden, workload, fault);
  std::int64_t differences = 0;
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      if (faulty(r, c) != golden(r, c)) {
        ++differences;
        EXPECT_EQ(r, 4);
        EXPECT_EQ(c, 9);
        EXPECT_EQ(faulty(r, c), golden(r, c) | 256);
      }
    }
  }
  EXPECT_EQ(differences, 1);
}

TEST(NetworkFiInjectTest, MaskedFaultLeavesTensorUnchanged) {
  auto workload = Conv16Kernel3x3x3x3();  // S·K = 9: columns 9..15 unused
  FiRunner runner(TestConfig());
  const auto golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{0, 12}, 8, StuckPolarity::kStuckAt1);
  const NetworkFi injector(TestSpec(Dataflow::kWeightStationary));
  EXPECT_EQ(injector.Inject(golden, workload, fault), golden);
}

TEST(NetworkFiInjectTest, RejectsWrongGoldenShape) {
  const NetworkFi injector(TestSpec(Dataflow::kWeightStationary));
  EXPECT_THROW(
      injector.Inject(Int32Tensor({4, 4}), Gemm16x16(),
                      StuckAtAdder(PeCoord{0, 0}, 8,
                                   StuckPolarity::kStuckAt1)),
      std::invalid_argument);
}

TEST(NetworkFiInjectTest, InjectForFaultMatchesExplicitPerturb) {
  const auto workload = Gemm16x16();
  FiRunner runner(TestConfig());
  const auto golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{3, 5}, 8, StuckPolarity::kStuckAt1);
  const NetworkFi injector(TestSpec(Dataflow::kWeightStationary));
  PerturbSpec explicit_perturb;
  explicit_perturb.mode = PerturbMode::kSetBit;
  explicit_perturb.bit = 8;
  EXPECT_EQ(injector.InjectForFault(golden, workload, fault),
            injector.Inject(golden, workload, fault, explicit_perturb));
}

TEST(EmulateExtractionTest, RejectsUnsupportedConfigurations) {
  FiRunner runner(TestConfig());
  const auto golden =
      runner.RunGolden(Gemm16x16(), Dataflow::kWeightStationary).output;
  const NetworkFi injector(TestSpec(Dataflow::kWeightStationary));
  // Non-ones workload.
  auto random_workload = Gemm16x16();
  random_workload.weight_fill = OperandFill::kRandom;
  EXPECT_THROW(
      injector.EmulateExtraction(
          golden, random_workload,
          StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1)),
      std::invalid_argument);
  EXPECT_FALSE(injector.ExtractionExact(
      random_workload,
      StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1)));
  // Stuck-at-0.
  EXPECT_THROW(
      injector.EmulateExtraction(
          golden, Gemm16x16(),
          StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt0)),
      std::invalid_argument);
  // Bit colliding with real partial sums (≤ 16).
  EXPECT_THROW(
      injector.EmulateExtraction(
          golden, Gemm16x16(),
          StuckAtAdder(PeCoord{0, 0}, 2, StuckPolarity::kStuckAt1)),
      std::invalid_argument);
  // The supported configuration is recognized as exact.
  EXPECT_TRUE(injector.ExtractionExact(
      Gemm16x16(), StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1)));
}

TEST(SampleAdderFaultTest, StaysInBoundsAndCoversArray) {
  const ArrayConfig config;
  Rng rng(7);
  std::set<std::pair<int, int>> sites;
  for (int i = 0; i < 2000; ++i) {
    const FaultSpec fault = SampleAdderFault(config, rng, 4, 20);
    EXPECT_GE(fault.pe.row, 0);
    EXPECT_LT(fault.pe.row, 16);
    EXPECT_GE(fault.pe.col, 0);
    EXPECT_LT(fault.pe.col, 16);
    EXPECT_GE(fault.bit, 4);
    EXPECT_LE(fault.bit, 20);
    EXPECT_EQ(fault.signal, MacSignal::kAdderOut);
    sites.insert({fault.pe.row, fault.pe.col});
  }
  EXPECT_GT(sites.size(), 200u);
  EXPECT_THROW(SampleAdderFault(config, rng, 8, 40), std::invalid_argument);
}

// The deprecated loose-parameter wrappers must stay behaviourally identical
// to the spec-based API until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedWrapperTest, MatchesSpecBasedApi) {
  const auto config = TestConfig();
  const auto workload = Gemm16x16();
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary).output;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  PerturbSpec perturb;
  perturb.mode = PerturbMode::kSetBit;
  perturb.bit = 8;

  AppFiSpec spec = TestSpec(Dataflow::kWeightStationary);
  spec.perturb = perturb;
  const NetworkFi injector(spec);

  EXPECT_EQ(InjectPattern(golden, workload, config,
                          Dataflow::kWeightStationary, fault, perturb),
            injector.Inject(golden, workload, fault));
  EXPECT_EQ(EmulateExtractionFault(golden, workload, config,
                                   Dataflow::kWeightStationary, fault),
            injector.EmulateExtraction(golden, workload, fault));
  const CrossValidation old_result =
      CrossValidate(workload, config, Dataflow::kWeightStationary, fault);
  const CrossValidation new_result = injector.CrossValidate(workload, fault);
  EXPECT_EQ(old_result.coords_match, new_result.coords_match);
  EXPECT_EQ(old_result.values_match, new_result.values_match);
  EXPECT_EQ(old_result.predicted_count, new_result.predicted_count);
  EXPECT_EQ(old_result.observed_count, new_result.observed_count);
}
#pragma GCC diagnostic pop

// The headline cross-validation: for every Table I workload and dataflow,
// the application-level injector reproduces the cycle-accurate faulty
// output bit-for-bit — the paper's proposed LLTFI integration, validated.
struct CrossValidateCase {
  const char* label;
  WorkloadSpec (*workload)();
  Dataflow dataflow;
};

class CrossValidateTest : public ::testing::TestWithParam<CrossValidateCase> {
};

TEST_P(CrossValidateTest, AppLevelInjectionMatchesSimulation) {
  const auto& tc = GetParam();
  const NetworkFi injector(TestSpec(tc.dataflow));
  for (const PeCoord site :
       {PeCoord{0, 0}, PeCoord{4, 9}, PeCoord{15, 15}, PeCoord{7, 3}}) {
    const FaultSpec fault =
        StuckAtAdder(site, 8, StuckPolarity::kStuckAt1);
    const CrossValidation validation =
        injector.CrossValidate(tc.workload(), fault);
    EXPECT_TRUE(validation.coords_match)
        << tc.label << " " << fault.ToString();
    EXPECT_TRUE(validation.values_match)
        << tc.label << " " << fault.ToString();
    EXPECT_GT(validation.simulated_pe_steps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableI, CrossValidateTest,
    ::testing::Values(
        CrossValidateCase{"gemm16_ws", &Gemm16x16,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"gemm16_os", &Gemm16x16,
                          Dataflow::kOutputStationary},
        CrossValidateCase{"gemm112_ws", &Gemm112x112,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"gemm112_os", &Gemm112x112,
                          Dataflow::kOutputStationary},
        CrossValidateCase{"conv16k3_ws", &Conv16Kernel3x3x3x3,
                          Dataflow::kWeightStationary},
        CrossValidateCase{"conv16k8_ws", &Conv16Kernel3x3x3x8,
                          Dataflow::kWeightStationary}),
    [](const ::testing::TestParamInfo<CrossValidateCase>& param_info) {
      return std::string(param_info.param.label);
    });

}  // namespace
}  // namespace saffire
