#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "appfi/appfi.h"
#include "patterns/corruption.h"

namespace saffire {
namespace {

TEST(InjectNaiveBaselineTest, CorruptsExactlyOneElementByOneBit) {
  Int32Tensor golden({8, 8});
  for (std::int64_t i = 0; i < golden.size(); ++i) {
    golden.flat(i) = static_cast<std::int32_t>(i * 3 - 17);
  }
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faulty = InjectNaiveBaseline(golden, rng, 8);
    const auto map = ExtractCorruption(golden, faulty);
    ASSERT_EQ(map.count(), 1) << "trial " << trial;
    EXPECT_EQ(map.max_abs_delta, 256) << "trial " << trial;
  }
}

TEST(InjectNaiveBaselineTest, CoversTheWholeTensor) {
  Int32Tensor golden({4, 4});
  Rng rng(2);
  std::set<std::pair<std::int64_t, std::int64_t>> hit;
  for (int trial = 0; trial < 400; ++trial) {
    const auto faulty = InjectNaiveBaseline(golden, rng, 0);
    const auto map = ExtractCorruption(golden, faulty);
    ASSERT_EQ(map.count(), 1);
    hit.insert({map.corrupted.front().row, map.corrupted.front().col});
  }
  EXPECT_EQ(hit.size(), 16u);  // uniform over all elements
}

TEST(InjectNaiveBaselineTest, FlipIsInvolutive) {
  Int32Tensor golden({2, 3});
  golden(1, 2) = -99;
  Rng rng_a(3);
  Rng rng_b(3);
  const auto once = InjectNaiveBaseline(golden, rng_a, 5);
  const auto twice = InjectNaiveBaseline(once, rng_b, 5);
  EXPECT_EQ(twice, golden);  // same element (same rng stream), same bit
}

TEST(InjectNaiveBaselineTest, RejectsBadArguments) {
  Rng rng(4);
  EXPECT_THROW(InjectNaiveBaseline(Int32Tensor({2, 2, 2}), rng, 0),
               std::invalid_argument);
  EXPECT_THROW(InjectNaiveBaseline(Int32Tensor({2, 2}), rng, 32),
               std::invalid_argument);
  EXPECT_THROW(InjectNaiveBaseline(Int32Tensor({2, 2}), rng, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
