// TraceSession + ScopedSpan: the Chrome trace_event exposition (golden
// fixture — the exact bytes chrome://tracing consumes), span gating, and
// the phase-metrics routing into the default registry.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.h"
#include "obs/metrics.h"

namespace saffire::obs {
namespace {

// Global gates and buffers persist across tests in one process, so every
// test restores the disabled default and drops collected events.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetTracing(); }
  void TearDown() override { ResetTracing(); }

  static void ResetTracing() {
    TraceSession::Instance().Stop();
    SetPhaseMetricsEnabled(false);
    TraceSession::Instance().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansAreNoOps) {
  ASSERT_FALSE(TraceSession::Instance().enabled());
  ASSERT_FALSE(SpanTimingEnabled());
  {
    SAFFIRE_SPAN("test.disabled");
  }
  EXPECT_EQ(TraceSession::Instance().event_count(), 0u);
}

TEST_F(TraceTest, ChromeTraceGoldenFixture) {
  TraceSession& session = TraceSession::Instance();
  session.Start();
  session.RecordComplete("fi.golden_record", 10, 5);
  session.RecordComplete("executor.chunk", 20, 7);
  session.Stop();

  std::ostringstream out;
  session.WriteChromeTrace(out);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"fi.golden_record\",\"cat\":\"saffire\",\"ph\":\"X\","
      "\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":1},"
      "{\"name\":\"executor.chunk\",\"cat\":\"saffire\",\"ph\":\"X\","
      "\"ts\":20,\"dur\":7,\"pid\":1,\"tid\":1}"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST_F(TraceTest, ScopedSpansProduceLoadableTrace) {
  TraceSession& session = TraceSession::Instance();
  session.Start();
  {
    SAFFIRE_SPAN("test.outer");
    {
      SAFFIRE_SPAN("test.inner");
    }
  }
  session.Stop();
  EXPECT_EQ(session.event_count(), 2u);

  std::ostringstream out;
  session.WriteChromeTrace(out);
  const JsonValue doc = JsonValue::Parse(out.str());
  EXPECT_EQ(doc.At("displayTimeUnit").AsString(), "ms");
  const auto& events = doc.At("traceEvents").AsArray();
  ASSERT_EQ(events.size(), 2u);
  bool saw_outer = false;
  bool saw_inner = false;
  for (const JsonValue& event : events) {
    const std::string name = event.At("name").AsString();
    saw_outer = saw_outer || name == "test.outer";
    saw_inner = saw_inner || name == "test.inner";
    EXPECT_EQ(event.At("cat").AsString(), "saffire");
    EXPECT_EQ(event.At("ph").AsString(), "X");
    EXPECT_EQ(event.At("pid").AsInt(), 1);
    EXPECT_GE(event.At("tid").AsInt(), 1);
    EXPECT_GE(event.At("ts").AsInt(), 0);
    EXPECT_GE(event.At("dur").AsInt(), 0);
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(TraceTest, StopGatesFurtherRecording) {
  TraceSession& session = TraceSession::Instance();
  session.Start();
  {
    SAFFIRE_SPAN("test.before_stop");
  }
  session.Stop();
  {
    SAFFIRE_SPAN("test.after_stop");
  }
  EXPECT_EQ(session.event_count(), 1u);
}

TEST_F(TraceTest, StartClearsPreviousEvents) {
  TraceSession& session = TraceSession::Instance();
  session.Start();
  session.RecordComplete("test.stale", 0, 1);
  ASSERT_EQ(session.event_count(), 1u);
  session.Start();
  EXPECT_EQ(session.event_count(), 0u);
  session.Stop();
}

TEST_F(TraceTest, PhaseMetricsRouteIntoDefaultRegistry) {
  Histogram& phase = MetricsRegistry::Default().GetHistogram(
      "saffire.phase.seconds", "", "phase=\"test.phase_demo\"");
  const std::int64_t before = phase.count();

  SetPhaseMetricsEnabled(true);
  {
    SAFFIRE_SPAN("test.phase_demo");
  }
  {
    SAFFIRE_SPAN("test.phase_demo");
  }
  SetPhaseMetricsEnabled(false);

  EXPECT_EQ(phase.count(), before + 2);
  // And the snapshot rollup surfaces it under the bare phase name.
  const auto phases = MetricsRegistry::Default().Snapshot().PhaseSeconds();
  EXPECT_EQ(phases.count("test.phase_demo"), 1u);

  // Tracing stayed off throughout: phase metrics are independent of the
  // trace gate.
  EXPECT_EQ(TraceSession::Instance().event_count(), 0u);
}

}  // namespace
}  // namespace saffire::obs
