// MetricsRegistry: instrument semantics, concurrent-update consistency,
// and the Prometheus / JSON expositions (golden fixtures for the text
// formats — the exact bytes are the contract scrape tooling depends on).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"

namespace saffire::obs {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("saffire.test.count", "help one");
  Counter& b = registry.GetCounter("saffire.test.count", "help two");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3);

  // Distinct labels are distinct series of one family.
  Counter& labelled =
      registry.GetCounter("saffire.test.count", "", "pool=\"1\"");
  EXPECT_NE(&a, &labelled);
  EXPECT_EQ(labelled.value(), 0);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("saffire.test.value");
  EXPECT_THROW(registry.GetGauge("saffire.test.value"),
               std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("saffire.test.value"),
               std::invalid_argument);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("saffire.test.depth");
  gauge.Set(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(MetricsRegistryTest, HistogramBucketsAndDerivedCount) {
  MetricsRegistry registry;
  Histogram& h =
      registry.GetHistogram("saffire.test.seconds", "", "", {0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0 (<= 0.1)
  h.Observe(0.1);    // bucket 0 (inclusive upper bound)
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // overflow (+Inf)
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 100.65);
  const std::vector<std::int64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
}

// N threads hammer a shared counter, gauge, and histogram while another
// thread snapshots continuously. Every snapshot must be structurally
// consistent (histogram count == sum of its buckets) and the settled totals
// exact.
TEST(MetricsRegistryTest, ConcurrentUpdatesAndSnapshots) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("saffire.test.count");
  Gauge& gauge = registry.GetGauge("saffire.test.depth");
  Histogram& histogram =
      registry.GetHistogram("saffire.test.seconds", "", "", {1.0, 2.0});

  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> consistent_snapshots{0};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      ASSERT_EQ(snapshot.histograms.size(), 1u);
      const HistogramSnapshot& h = snapshot.histograms.front();
      std::int64_t bucket_sum = 0;
      for (const std::int64_t b : h.buckets) bucket_sum += b;
      ASSERT_EQ(h.count, bucket_sum);
      consistent_snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        gauge.Add(i % 2 == 0 ? 1 : -1);
        histogram.Observe(static_cast<double>((t + i) % 3));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_GT(consistent_snapshots.load(), 0);
  EXPECT_EQ(counter.value(), kThreads * kIterations);
  EXPECT_EQ(gauge.value(), 0);  // each thread adds and removes equally
  EXPECT_EQ(histogram.count(), kThreads * kIterations);
}

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("saffire.demo.events", "things that happened")
      .Increment(7);
  registry.GetCounter("saffire.demo.events", "", "pool=\"1\"").Increment(2);
  registry.GetGauge("saffire.demo.depth", "queued work").Set(3);
  Histogram& h = registry.GetHistogram("saffire.demo.seconds",
                                       "elapsed seconds", "", {0.5, 2.0});
  h.Observe(0.25);
  h.Observe(1.0);
  h.Observe(4.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string expected =
      "# HELP saffire_demo_events things that happened\n"
      "# TYPE saffire_demo_events counter\n"
      "saffire_demo_events 7\n"
      "saffire_demo_events{pool=\"1\"} 2\n"
      "# HELP saffire_demo_depth queued work\n"
      "# TYPE saffire_demo_depth gauge\n"
      "saffire_demo_depth 3\n"
      "# HELP saffire_demo_seconds elapsed seconds\n"
      "# TYPE saffire_demo_seconds histogram\n"
      "saffire_demo_seconds_bucket{le=\"0.5\"} 1\n"
      "saffire_demo_seconds_bucket{le=\"2\"} 2\n"
      "saffire_demo_seconds_bucket{le=\"+Inf\"} 3\n"
      "saffire_demo_seconds_sum 5.25\n"
      "saffire_demo_seconds_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(MetricsRegistryTest, JsonExpositionParsesAndMatches) {
  MetricsRegistry registry;
  registry.GetCounter("saffire.demo.events", "help", "pool=\"0\"")
      .Increment(11);
  registry.GetGauge("saffire.demo.depth").Set(-2);
  registry.GetHistogram("saffire.demo.seconds", "", "", {1.0}).Observe(0.5);

  std::ostringstream out;
  registry.WriteJson(out);
  const JsonValue doc = JsonValue::Parse(out.str());
  const auto& counters = doc.At("counters").AsArray();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].At("name").AsString(), "saffire.demo.events");
  EXPECT_EQ(counters[0].At("labels").AsString(), "pool=\"0\"");
  EXPECT_EQ(counters[0].At("value").AsInt(), 11);
  const auto& gauges = doc.At("gauges").AsArray();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].At("value").AsInt(), -2);
  const auto& histograms = doc.At("histograms").AsArray();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].At("count").AsInt(), 1);
  EXPECT_DOUBLE_EQ(histograms[0].At("sum").AsDouble(), 0.5);
  ASSERT_EQ(histograms[0].At("buckets").AsArray().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesInstrumentsKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("saffire.test.count");
  Histogram& histogram = registry.GetHistogram("saffire.test.seconds");
  counter.Increment(5);
  histogram.Observe(1.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  counter.Increment();
  EXPECT_EQ(counter.value(), 1);
}

TEST(MetricsSnapshotTest, PhaseSecondsSumsPhaseHistograms) {
  MetricsRegistry registry;
  registry
      .GetHistogram("saffire.phase.seconds", "", "phase=\"fi.golden\"")
      .Observe(0.5);
  registry
      .GetHistogram("saffire.phase.seconds", "", "phase=\"fi.golden\"")
      .Observe(0.25);
  registry
      .GetHistogram("saffire.phase.seconds", "", "phase=\"executor.chunk\"")
      .Observe(2.0);
  registry.GetHistogram("saffire.other.seconds", "", "").Observe(9.0);

  const std::map<std::string, double> phases =
      registry.Snapshot().PhaseSeconds();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases.at("fi.golden"), 0.75);
  EXPECT_DOUBLE_EQ(phases.at("executor.chunk"), 2.0);
}

}  // namespace
}  // namespace saffire::obs
