// Differential faulty runs (FiRunner::RunFaultyDifferential) must be
// bit-for-bit identical to full faulty runs: same output, cycles, and fault
// activations, with pe_steps + pe_steps_skipped equal to the full run's
// pe_steps. Exercised exhaustively over an 8×8 array for every MacSignal,
// plus tiled and transient workloads, and the golden-run cache that feeds
// the campaign layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "fi/cone.h"
#include "fi/golden_cache.h"
#include "fi/runner.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  return config;
}

WorkloadSpec SmallGemm(std::int64_t m, std::int64_t k, std::int64_t n) {
  WorkloadSpec spec;
  spec.name = "gemm-diff-test";
  spec.m = m;
  spec.k = k;
  spec.n = n;
  spec.input_fill = OperandFill::kRandom;
  spec.weight_fill = OperandFill::kRandom;
  return spec;
}

void ExpectDifferentialMatchesFull(const AccelConfig& accel,
                                   const WorkloadSpec& workload,
                                   Dataflow dataflow, const FaultSpec& fault) {
  SCOPED_TRACE(fault.ToString() + " | " + ToString(dataflow));
  GoldenTrace trace;
  FiRunner recorded_runner(accel);
  const RunResult golden =
      recorded_runner.RunGoldenRecorded(workload, dataflow, &trace);

  FiRunner full_runner(accel);
  const RunResult plain_golden = full_runner.RunGolden(workload, dataflow);
  ASSERT_EQ(golden.output, plain_golden.output);
  ASSERT_EQ(golden.cycles, plain_golden.cycles);
  ASSERT_EQ(golden.pe_steps, plain_golden.pe_steps);

  const RunResult full =
      full_runner.RunFaulty(workload, dataflow, {&fault, 1});
  FiRunner diff_runner(accel);
  const RunResult diff = diff_runner.RunFaultyDifferential(
      workload, dataflow, {&fault, 1}, trace);

  ASSERT_EQ(diff.output, full.output);
  ASSERT_EQ(diff.cycles, full.cycles);
  ASSERT_EQ(diff.fault_activations, full.fault_activations);
  ASSERT_EQ(full.pe_steps_skipped, 0u);
  ASSERT_EQ(diff.pe_steps + diff.pe_steps_skipped, full.pe_steps);
}

TEST(FaultConeTest, ColumnConfinedSignalsConeIsOneColumn) {
  const ArrayConfig array = SmallAccel().array;
  for (const MacSignal signal :
       {MacSignal::kWeightOperand, MacSignal::kMulOut, MacSignal::kAdderOut,
        MacSignal::kSouthForward}) {
    FaultSpec fault = StuckAtAdder({3, 5}, 2, StuckPolarity::kStuckAt1);
    fault.signal = signal;
    for (const Dataflow dataflow :
         {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
      const ColumnCone cone = FaultCone({&fault, 1}, dataflow, array);
      EXPECT_EQ(cone, (ColumnCone{5, 5})) << ToString(signal);
    }
  }
}

TEST(FaultConeTest, ActForwardConeReachesEastEdge) {
  const ArrayConfig array = SmallAccel().array;
  FaultSpec fault = StuckAtAdder({3, 5}, 2, StuckPolarity::kStuckAt1);
  fault.signal = MacSignal::kActForward;
  const ColumnCone cone =
      FaultCone({&fault, 1}, Dataflow::kWeightStationary, array);
  EXPECT_EQ(cone, (ColumnCone{5, 7}));
}

TEST(FaultConeTest, MultiFaultConeIsTheUnion) {
  const ArrayConfig array = SmallAccel().array;
  const FaultSpec faults[] = {
      StuckAtAdder({1, 2}, 0, StuckPolarity::kStuckAt1),
      StuckAtAdder({6, 6}, 0, StuckPolarity::kStuckAt0),
  };
  const ColumnCone cone =
      FaultCone(faults, Dataflow::kOutputStationary, array);
  EXPECT_EQ(cone, (ColumnCone{2, 6}));
}

// The ISSUE's acceptance campaign: every PE of the 8×8 array, every
// MacSignal, both stuck polarities, under both physical dataflows.
TEST(DifferentialRunTest, ExhaustiveEightByEightMatchesFullRuns) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    GoldenTrace trace;
    FiRunner golden_runner(accel);
    const RunResult golden =
        golden_runner.RunGoldenRecorded(workload, dataflow, &trace);
    FiRunner full_runner(accel);
    FiRunner diff_runner(accel);
    for (const MacSignal signal :
         {MacSignal::kMulOut, MacSignal::kAdderOut, MacSignal::kWeightOperand,
          MacSignal::kActForward, MacSignal::kSouthForward}) {
      for (const StuckPolarity polarity :
           {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
        for (const PeCoord pe : AllPeCoords(accel.array)) {
          FaultSpec fault;
          fault.pe = pe;
          fault.signal = signal;
          fault.bit = 3;
          fault.polarity = polarity;
          const RunResult full =
              full_runner.RunFaulty(workload, dataflow, {&fault, 1});
          const RunResult diff = diff_runner.RunFaultyDifferential(
              workload, dataflow, {&fault, 1}, trace);
          ASSERT_EQ(diff.output, full.output)
              << fault.ToString() << " | " << ToString(dataflow);
          ASSERT_EQ(diff.cycles, full.cycles) << fault.ToString();
          ASSERT_EQ(diff.fault_activations, full.fault_activations)
              << fault.ToString();
          ASSERT_EQ(diff.pe_steps + diff.pe_steps_skipped, full.pe_steps)
              << fault.ToString();
        }
      }
    }
    // Column-confined faults evaluate one column out of eight; the skip
    // counter must reflect a real saving, not just equality.
    FaultSpec probe = StuckAtAdder({4, 4}, 3, StuckPolarity::kStuckAt1);
    const RunResult diff = diff_runner.RunFaultyDifferential(
        workload, dataflow, {&probe, 1}, trace);
    EXPECT_GT(diff.pe_steps_skipped, 0u);
    EXPECT_LT(diff.pe_steps, golden.pe_steps);
  }
}

// Multi-tile replay: a 12×12×12 GEMM on the 8×8 array splits into several
// COMPUTE invocations (and, under OS, several accumulator drains), so the
// trace's per-Reset checkpoints and step alignment get exercised.
TEST(DifferentialRunTest, TiledWorkloadMatchesFullRuns) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(12, 12, 12);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    for (const PeCoord pe : {PeCoord{0, 0}, PeCoord{3, 4}, PeCoord{7, 7}}) {
      ExpectDifferentialMatchesFull(
          accel, workload, dataflow,
          StuckAtAdder(pe, 5, StuckPolarity::kStuckAt1));
    }
  }
}

TEST(DifferentialRunTest, TransientFlipMatchesFullRun) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);
  FaultSpec fault;
  fault.kind = FaultKind::kTransientFlip;
  fault.pe = {2, 6};
  fault.signal = MacSignal::kAdderOut;
  fault.bit = 7;
  fault.at_cycle = 10;
  ExpectDifferentialMatchesFull(accel, workload,
                                Dataflow::kWeightStationary, fault);
}

TEST(GoldenRunCacheTest, HitsOnRepeatKeyMissesOnChangedKey) {
  GoldenRunCache& cache = GoldenRunCache::Instance();
  cache.Clear();
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);

  bool hit = true;
  const auto first = cache.GetOrCompute(accel, workload,
                                        Dataflow::kWeightStationary, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.GetOrCompute(accel, workload,
                                         Dataflow::kWeightStationary, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());

  // Same display string, different data seed: must be a distinct entry.
  WorkloadSpec reseeded = workload;
  reseeded.data_seed ^= 0xbeef;
  cache.GetOrCompute(accel, reseeded, Dataflow::kWeightStationary, &hit);
  EXPECT_FALSE(hit);
  cache.GetOrCompute(accel, workload, Dataflow::kOutputStationary, &hit);
  EXPECT_FALSE(hit);

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.entries(), 3u);

  // The cached entry matches a fresh golden run bit-for-bit and carries a
  // usable trace.
  FiRunner runner(accel);
  const RunResult golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary);
  EXPECT_EQ(first->result.output, golden.output);
  EXPECT_EQ(first->result.cycles, golden.cycles);
  EXPECT_GT(first->trace.steps(), 0);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace saffire
