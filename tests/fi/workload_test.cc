#include "fi/workload.h"

#include <gtest/gtest.h>

#include "tensor/shift_gemm.h"

namespace saffire {
namespace {

TEST(OperandFillTest, OnesAreAllOnes) {
  Rng rng(1);
  const auto t = MakeOperand({4, 4}, OperandFill::kOnes, rng);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.flat(i), 1);
  }
}

TEST(OperandFillTest, NearZeroIsMostlyZero) {
  Rng rng(2);
  const auto t = MakeOperand({100, 100}, OperandFill::kNearZero, rng);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    if (t.flat(i) == 0) {
      ++zeros;
    } else {
      EXPECT_TRUE(t.flat(i) == 1 || t.flat(i) == -1);
    }
  }
  EXPECT_GT(zeros, 8000);
  EXPECT_LT(zeros, 9800);
}

TEST(OperandFillTest, RandomIsDeterministicPerSeed) {
  Rng rng_a(3);
  Rng rng_b(3);
  EXPECT_EQ(MakeOperand({8, 8}, OperandFill::kRandom, rng_a),
            MakeOperand({8, 8}, OperandFill::kRandom, rng_b));
}

TEST(WorkloadSpecTest, GemmDims) {
  const auto spec = Gemm16x16();
  EXPECT_EQ(spec.GemmM(), 16);
  EXPECT_EQ(spec.GemmK(), 16);
  EXPECT_EQ(spec.GemmN(), 16);
  const auto big = Gemm112x112();
  EXPECT_EQ(big.GemmM(), 112);
}

TEST(WorkloadSpecTest, ConvDimsFollowLowering) {
  auto spec = Conv16Kernel3x3x3x8();
  EXPECT_EQ(spec.lowering, ConvLowering::kShiftGemm);
  EXPECT_EQ(spec.GemmM(), ShiftGemmRows(spec.conv));   // N·P·W = 14·16
  EXPECT_EQ(spec.GemmK(), 9);                          // C·R
  EXPECT_EQ(spec.GemmN(), 24);                         // S·K
  spec.lowering = ConvLowering::kIm2Col;
  EXPECT_EQ(spec.GemmM(), 14 * 14);                    // NPQ
  EXPECT_EQ(spec.GemmK(), 27);                         // CRS
  EXPECT_EQ(spec.GemmN(), 8);                          // K
}

TEST(WorkloadSpecTest, TableIPresetsValidate) {
  for (const WorkloadSpec& spec :
       {Gemm16x16(), Gemm112x112(), Conv16Kernel3x3x3x3(),
        Conv16Kernel3x3x3x8(), Conv112Kernel3x3x3x8()}) {
    EXPECT_NO_THROW(spec.Validate()) << spec.ToString();
    EXPECT_FALSE(spec.name.empty());
  }
}

TEST(WorkloadSpecTest, PaperKernelShorthands) {
  EXPECT_EQ(KernelShorthand(Conv16Kernel3x3x3x3().conv), "3x3x3x3");
  EXPECT_EQ(KernelShorthand(Conv16Kernel3x3x3x8().conv), "3x3x3x8");
  EXPECT_EQ(Conv112Kernel3x3x3x8().conv.height, 112);
}

TEST(MaterializeTest, GemmShapes) {
  const auto materialized = Materialize(Gemm112x112());
  EXPECT_EQ(materialized.a.ShapeString(), "(112, 112)");
  EXPECT_EQ(materialized.b.ShapeString(), "(112, 112)");
}

TEST(MaterializeTest, ConvShapesMatchGemmDims) {
  for (const WorkloadSpec& spec :
       {Conv16Kernel3x3x3x3(), Conv16Kernel3x3x3x8()}) {
    const auto materialized = Materialize(spec);
    EXPECT_EQ(materialized.a.dim(0), spec.GemmM());
    EXPECT_EQ(materialized.a.dim(1), spec.GemmK());
    EXPECT_EQ(materialized.b.dim(0), spec.GemmK());
    EXPECT_EQ(materialized.b.dim(1), spec.GemmN());
  }
}

TEST(MaterializeTest, DeterministicInSeed) {
  auto spec = Gemm16x16();
  spec.input_fill = OperandFill::kRandom;
  spec.weight_fill = OperandFill::kRandom;
  const auto first = Materialize(spec);
  const auto second = Materialize(spec);
  EXPECT_EQ(first.a, second.a);
  EXPECT_EQ(first.b, second.b);
  spec.data_seed = 999;
  const auto third = Materialize(spec);
  EXPECT_FALSE(first.a == third.a);
}

TEST(WorkloadSpecTest, ToStringIsDescriptive) {
  const auto text = Conv16Kernel3x3x3x8().ToString();
  EXPECT_NE(text.find("conv"), std::string::npos);
  EXPECT_NE(text.find("shift-gemm"), std::string::npos);
  EXPECT_NE(text.find("ones"), std::string::npos);
}

}  // namespace
}  // namespace saffire
