#include "fi/runner.h"

#include <gtest/gtest.h>

#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 128;
  config.spad_rows = 256;
  config.acc_rows = 128;
  config.dram_bytes = 4 << 20;
  return config;
}

TEST(FiRunnerTest, GoldenMatchesReference) {
  FiRunner runner(TestConfig());
  const auto spec = Gemm16x16();
  const auto golden = runner.RunGolden(spec, Dataflow::kWeightStationary);
  const auto operands = Materialize(spec);
  EXPECT_EQ(golden.output, GemmRef(operands.a, operands.b));
  EXPECT_EQ(golden.fault_activations, 0u);
  EXPECT_GT(golden.cycles, 0);
  EXPECT_GT(golden.pe_steps, 0u);
}

TEST(FiRunnerTest, GoldenIsReproducible) {
  FiRunner runner(TestConfig());
  const auto spec = Gemm16x16();
  const auto first = runner.RunGolden(spec, Dataflow::kOutputStationary);
  const auto second = runner.RunGolden(spec, Dataflow::kOutputStationary);
  EXPECT_EQ(first.output, second.output);
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.pe_steps, second.pe_steps);
}

TEST(FiRunnerTest, FaultyRunDiffersAndReportsActivations) {
  FiRunner runner(TestConfig());
  const auto spec = Gemm16x16();
  const auto golden = runner.RunGolden(spec, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      runner.RunFaulty(spec, Dataflow::kWeightStationary, {&fault, 1});
  EXPECT_FALSE(faulty.output == golden.output);
  EXPECT_GT(faulty.fault_activations, 0u);
  // The fault hook must be removed afterwards: a fresh golden run matches.
  const auto clean = runner.RunGolden(spec, Dataflow::kWeightStationary);
  EXPECT_EQ(clean.output, golden.output);
}

TEST(FiRunnerTest, WsFaultyCyclesMatchGoldenCycles) {
  // Fault injection perturbs values, never timing.
  FiRunner runner(TestConfig());
  const auto spec = Gemm112x112();
  const auto golden = runner.RunGolden(spec, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      runner.RunFaulty(spec, Dataflow::kWeightStationary, {&fault, 1});
  EXPECT_EQ(faulty.cycles, golden.cycles);
  EXPECT_EQ(faulty.pe_steps, golden.pe_steps);
}

TEST(FiRunnerTest, ConvRunsThroughLoweredGemm) {
  FiRunner runner(TestConfig());
  const auto spec = Conv16Kernel3x3x3x3();
  const auto golden = runner.RunGolden(spec, Dataflow::kWeightStationary);
  EXPECT_EQ(golden.output.dim(0), spec.GemmM());
  EXPECT_EQ(golden.output.dim(1), spec.GemmN());
  // All-ones conv: every output element is C·R·S = 27.
  const auto operands = Materialize(spec);
  EXPECT_EQ(golden.output, GemmRef(operands.a, operands.b));
}

TEST(FiRunnerTest, ConvCostExceedsGemmCost) {
  // The paper's FI-cost observation: a conv experiment costs ~3× a GEMM
  // experiment (130 s vs 45 s on their FPGA).
  FiRunner runner(TestConfig());
  const auto gemm = runner.RunGolden(Gemm16x16(), Dataflow::kWeightStationary);
  const auto conv = runner.RunGolden(Conv16Kernel3x3x3x3(),
                                     Dataflow::kWeightStationary);
  EXPECT_GT(conv.cycles, gemm.cycles);
}

TEST(FiRunnerTest, StructurallyMaskedSiteProducesGoldenOutput) {
  // A WS fault in a column the operation never samples corrupts nothing.
  FiRunner runner(TestConfig());
  WorkloadSpec narrow = Gemm16x16();
  narrow.n = 4;  // columns 4..15 unused
  const auto golden = runner.RunGolden(narrow, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{0, 9}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      runner.RunFaulty(narrow, Dataflow::kWeightStationary, {&fault, 1});
  EXPECT_EQ(faulty.output, golden.output);
  // The fault still toggled wires inside the array (activations > 0): it is
  // architecturally active but structurally masked at the output.
  EXPECT_GT(faulty.fault_activations, 0u);
}

}  // namespace
}  // namespace saffire
