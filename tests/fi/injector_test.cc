#include "fi/injector.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(FaultInjectorTest, StuckAtAppliesEveryCycle) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{1, 2}, 0, StuckPolarity::kStuckAt1)}, config);
  EXPECT_EQ(injector.Apply(PeCoord{1, 2}, MacSignal::kAdderOut, 4, 0), 5);
  EXPECT_EQ(injector.Apply(PeCoord{1, 2}, MacSignal::kAdderOut, 4, 999), 5);
  EXPECT_EQ(injector.activations(), 2u);
}

TEST(FaultInjectorTest, OnlyMatchingPeAndSignalAffected) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{1, 2}, 0, StuckPolarity::kStuckAt1)}, config);
  EXPECT_EQ(injector.Apply(PeCoord{1, 3}, MacSignal::kAdderOut, 4, 0), 4);
  EXPECT_EQ(injector.Apply(PeCoord{1, 2}, MacSignal::kMulOut, 4, 0), 4);
  EXPECT_EQ(injector.activations(), 0u);
  EXPECT_TRUE(injector.AppliesTo(PeCoord{1, 2}));
  EXPECT_FALSE(injector.AppliesTo(PeCoord{2, 1}));
}

TEST(FaultInjectorTest, MaskedApplicationsNotCountedAsActivations) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{0, 0}, 0, StuckPolarity::kStuckAt1)}, config);
  // Value already has bit 0 set: fault changes nothing.
  EXPECT_EQ(injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 5, 0), 5);
  EXPECT_EQ(injector.activations(), 0u);
}

TEST(FaultInjectorTest, TransientFiresOnExactCycleOnly) {
  const ArrayConfig config;
  FaultSpec flip;
  flip.kind = FaultKind::kTransientFlip;
  flip.pe = PeCoord{0, 0};
  flip.signal = MacSignal::kAdderOut;
  flip.bit = 2;
  flip.at_cycle = 10;
  FaultInjector injector({flip}, config);
  EXPECT_EQ(injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 0, 9), 0);
  EXPECT_EQ(injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 0, 10), 4);
  EXPECT_EQ(injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 0, 11), 0);
  EXPECT_EQ(injector.activations(), 1u);
}

TEST(FaultInjectorTest, MultipleFaultsCompose) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{0, 0}, 0, StuckPolarity::kStuckAt1),
       StuckAtAdder(PeCoord{0, 0}, 1, StuckPolarity::kStuckAt1)},
      config);
  EXPECT_EQ(injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 0, 0), 3);
  EXPECT_TRUE(injector.AppliesTo(PeCoord{0, 0}));
}

TEST(FaultInjectorTest, MultiplePesSupported) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{0, 0}, 0, StuckPolarity::kStuckAt1),
       StuckAtAdder(PeCoord{5, 5}, 0, StuckPolarity::kStuckAt0)},
      config);
  EXPECT_TRUE(injector.AppliesTo(PeCoord{0, 0}));
  EXPECT_TRUE(injector.AppliesTo(PeCoord{5, 5}));
  EXPECT_FALSE(injector.AppliesTo(PeCoord{5, 0}));
  EXPECT_EQ(injector.Apply(PeCoord{5, 5}, MacSignal::kAdderOut, 7, 0), 6);
}

TEST(FaultInjectorTest, StuckAtSignBitProducesNegative) {
  const ArrayConfig config;
  FaultInjector injector(
      {StuckAtAdder(PeCoord{0, 0}, 31, StuckPolarity::kStuckAt1)}, config);
  const std::int64_t out =
      injector.Apply(PeCoord{0, 0}, MacSignal::kAdderOut, 100, 0);
  EXPECT_LT(out, 0);
}

TEST(FaultInjectorTest, RejectsEmptyAndInvalidSpecs) {
  const ArrayConfig config;
  EXPECT_THROW(FaultInjector({}, config), std::invalid_argument);
  EXPECT_THROW(FaultInjector({StuckAtAdder(PeCoord{99, 0}, 0,
                                           StuckPolarity::kStuckAt1)},
                             config),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
