#include "fi/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(FaultSpecTest, ValidateAcceptsPaperFault) {
  const ArrayConfig config;
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  EXPECT_NO_THROW(fault.Validate(config));
  EXPECT_EQ(fault.signal, MacSignal::kAdderOut);
  EXPECT_EQ(fault.kind, FaultKind::kStuckAt);
}

TEST(FaultSpecTest, ValidateRejectsOutOfRangePe) {
  const ArrayConfig config;
  FaultSpec fault = StuckAtAdder(PeCoord{16, 0}, 0, StuckPolarity::kStuckAt0);
  EXPECT_THROW(fault.Validate(config), std::invalid_argument);
  fault.pe = PeCoord{0, -1};
  EXPECT_THROW(fault.Validate(config), std::invalid_argument);
}

TEST(FaultSpecTest, ValidateRejectsBitOutsideSignalWidth) {
  const ArrayConfig config;  // 8-bit operands, 32-bit accumulator
  FaultSpec fault = StuckAtAdder(PeCoord{0, 0}, 32, StuckPolarity::kStuckAt1);
  EXPECT_THROW(fault.Validate(config), std::invalid_argument);
  fault.bit = 31;
  EXPECT_NO_THROW(fault.Validate(config));
  fault.signal = MacSignal::kWeightOperand;  // 8-bit signal
  fault.bit = 8;
  EXPECT_THROW(fault.Validate(config), std::invalid_argument);
}

TEST(FaultSpecTest, TransientRequiresCycle) {
  const ArrayConfig config;
  FaultSpec fault;
  fault.kind = FaultKind::kTransientFlip;
  fault.bit = 3;
  EXPECT_THROW(fault.Validate(config), std::invalid_argument);
  fault.at_cycle = 100;
  EXPECT_NO_THROW(fault.Validate(config));
}

TEST(FaultSpecTest, ToStringFormats) {
  FaultSpec stuck = StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  EXPECT_EQ(stuck.ToString(), "SA1 bit8 adder_out @PE(4,9)");
  FaultSpec flip;
  flip.kind = FaultKind::kTransientFlip;
  flip.pe = PeCoord{0, 1};
  flip.signal = MacSignal::kMulOut;
  flip.bit = 3;
  flip.at_cycle = 120;
  EXPECT_EQ(flip.ToString(), "FLIP bit3 mul_out @PE(0,1) cy120");
}

TEST(AllPeCoordsTest, EnumeratesRowMajor) {
  ArrayConfig config;
  config.rows = 2;
  config.cols = 3;
  const auto coords = AllPeCoords(config);
  ASSERT_EQ(coords.size(), 6u);
  EXPECT_EQ(coords[0], (PeCoord{0, 0}));
  EXPECT_EQ(coords[2], (PeCoord{0, 2}));
  EXPECT_EQ(coords[3], (PeCoord{1, 0}));
  EXPECT_EQ(coords[5], (PeCoord{1, 2}));
}

TEST(AllPeCoordsTest, PaperArrayHas256Sites) {
  EXPECT_EQ(AllPeCoords(ArrayConfig{}).size(), 256u);
}

TEST(FaultKindTest, Names) {
  EXPECT_EQ(ToString(FaultKind::kStuckAt), "stuck-at");
  EXPECT_EQ(ToString(FaultKind::kTransientFlip), "transient-flip");
}

}  // namespace
}  // namespace saffire
