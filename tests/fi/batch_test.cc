// Lane-parallel batched runs (FiRunner::RunFaultyBatch) must be
// bit-for-bit identical to differential runs for every lane: same output,
// cycles, fault activations, and the same pe_steps / pe_steps_skipped
// split. Exercised over every MacSignal and dataflow, tiled workloads,
// transient strikes, heterogeneous batches, and the W=1 degenerate batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fi/runner.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

WorkloadSpec SmallGemm(std::int64_t m, std::int64_t k, std::int64_t n) {
  WorkloadSpec spec;
  spec.name = "gemm-batch-test";
  spec.m = m;
  spec.k = k;
  spec.n = n;
  spec.input_fill = OperandFill::kRandom;
  spec.weight_fill = OperandFill::kRandom;
  return spec;
}

// Runs `faults` as one batch and checks every lane against an independent
// differential run of the same fault. Transient at_cycle values are
// interpreted as relative strike offsets by the batch engine, so the
// differential comparator rebases them onto its simulator's clock exactly
// like RunPreparedExperiment does.
void ExpectBatchMatchesDifferential(const AccelConfig& accel,
                                    const WorkloadSpec& workload,
                                    Dataflow dataflow,
                                    const std::vector<FaultSpec>& faults) {
  SCOPED_TRACE(ToString(dataflow));
  GoldenTrace trace;
  FiRunner batch_runner(accel);
  const RunResult golden =
      batch_runner.RunGoldenRecorded(workload, dataflow, &trace);

  const std::vector<RunResult> batch =
      batch_runner.RunFaultyBatch(workload, dataflow, faults, trace, golden);
  ASSERT_EQ(batch.size(), faults.size());

  FiRunner diff_runner(accel);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    SCOPED_TRACE(faults[i].ToString());
    FaultSpec injected = faults[i];
    if (injected.kind == FaultKind::kTransientFlip) {
      injected.at_cycle += diff_runner.accel().cycles();
    }
    const RunResult diff = diff_runner.RunFaultyDifferential(
        workload, dataflow, {&injected, 1}, trace);
    ASSERT_EQ(batch[i].output, diff.output);
    ASSERT_EQ(batch[i].cycles, diff.cycles);
    ASSERT_EQ(batch[i].fault_activations, diff.fault_activations);
    ASSERT_EQ(batch[i].pe_steps, diff.pe_steps);
    ASSERT_EQ(batch[i].pe_steps_skipped, diff.pe_steps_skipped);
  }
}

// Every MacSignal under every dataflow, a batch of several PEs per signal.
TEST(BatchRunTest, AllSignalsAllDataflowsMatchDifferential) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    for (const MacSignal signal :
         {MacSignal::kMulOut, MacSignal::kAdderOut, MacSignal::kWeightOperand,
          MacSignal::kActForward, MacSignal::kSouthForward}) {
      SCOPED_TRACE(ToString(signal));
      std::vector<FaultSpec> faults;
      for (const PeCoord pe :
           {PeCoord{0, 0}, PeCoord{3, 4}, PeCoord{5, 1}, PeCoord{7, 7}}) {
        FaultSpec fault;
        fault.pe = pe;
        fault.signal = signal;
        fault.bit = 3;
        fault.polarity = StuckPolarity::kStuckAt1;
        faults.push_back(fault);
      }
      ExpectBatchMatchesDifferential(accel, workload, dataflow, faults);
    }
  }
}

// Multi-tile replay: the trace's per-Reset checkpoints, the per-(mi, ni)
// accumulator mirroring, and partial edge tiles all get exercised.
TEST(BatchRunTest, TiledWorkloadMatchesDifferential) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(20, 10, 12);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    std::vector<FaultSpec> faults;
    for (const PeCoord pe : {PeCoord{0, 0}, PeCoord{2, 6}, PeCoord{7, 3}}) {
      faults.push_back(StuckAtAdder(pe, 5, StuckPolarity::kStuckAt0));
    }
    ExpectBatchMatchesDifferential(accel, workload, dataflow, faults);
  }
}

// Transient strikes: relative offsets, including lanes whose strike lands
// outside any recorded step (electrically masked).
TEST(BatchRunTest, TransientStrikesMatchDifferential) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(12, 12, 12);
  std::vector<FaultSpec> faults;
  for (const std::int64_t offset : {0, 7, 31, 1000000}) {
    FaultSpec fault;
    fault.kind = FaultKind::kTransientFlip;
    fault.pe = {2, 6};
    fault.signal = MacSignal::kAdderOut;
    fault.bit = 7;
    fault.at_cycle = offset;
    faults.push_back(fault);
  }
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    ExpectBatchMatchesDifferential(accel, workload, dataflow, faults);
  }
}

// The differential comparator above runs on a fresh simulator; transient
// rebasing must also hold when the comparator's clock is already advanced.
TEST(BatchRunTest, TransientRebasesOntoAdvancedClock) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);
  GoldenTrace trace;
  FiRunner batch_runner(accel);
  const RunResult golden = batch_runner.RunGoldenRecorded(
      workload, Dataflow::kWeightStationary, &trace);

  FaultSpec fault;
  fault.kind = FaultKind::kTransientFlip;
  fault.pe = {4, 4};
  fault.signal = MacSignal::kMulOut;
  fault.bit = 2;
  fault.at_cycle = 9;
  const std::vector<FaultSpec> faults{fault};
  const std::vector<RunResult> batch = batch_runner.RunFaultyBatch(
      workload, Dataflow::kWeightStationary, faults, trace, golden);

  FiRunner diff_runner(accel);
  diff_runner.RunGolden(workload, Dataflow::kWeightStationary);  // advance
  ASSERT_GT(diff_runner.accel().cycles(), 0);
  FaultSpec injected = fault;
  injected.at_cycle += diff_runner.accel().cycles();
  const RunResult diff = diff_runner.RunFaultyDifferential(
      workload, Dataflow::kWeightStationary, {&injected, 1}, trace);
  EXPECT_EQ(batch.front().output, diff.output);
  EXPECT_EQ(batch.front().fault_activations, diff.fault_activations);
}

// One heterogeneous batch: different signals, bits, polarities, and kinds
// packed into the same array pass.
TEST(BatchRunTest, HeterogeneousBatchMatchesDifferential) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(12, 12, 12);
  std::vector<FaultSpec> faults;
  faults.push_back(StuckAtAdder({0, 0}, 0, StuckPolarity::kStuckAt1));
  faults.push_back(StuckAtAdder({7, 7}, 31, StuckPolarity::kStuckAt0));
  {
    FaultSpec fault;
    fault.pe = {3, 2};
    fault.signal = MacSignal::kActForward;
    fault.bit = 6;
    fault.polarity = StuckPolarity::kStuckAt0;
    faults.push_back(fault);
  }
  {
    FaultSpec fault;
    fault.pe = {1, 5};
    fault.signal = MacSignal::kSouthForward;
    fault.bit = 9;
    fault.polarity = StuckPolarity::kStuckAt1;
    faults.push_back(fault);
  }
  {
    FaultSpec fault;
    fault.kind = FaultKind::kTransientFlip;
    fault.pe = {6, 3};
    fault.signal = MacSignal::kWeightOperand;
    fault.bit = 1;
    fault.at_cycle = 14;
    faults.push_back(fault);
  }
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    ExpectBatchMatchesDifferential(accel, workload, dataflow, faults);
  }
}

// W=1: a single-lane batch is just a slower spelling of a differential run.
TEST(BatchRunTest, SingleLaneBatchMatchesDifferential) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(12, 12, 12);
  const std::vector<FaultSpec> faults{
      StuckAtAdder({4, 4}, 8, StuckPolarity::kStuckAt1)};
  ExpectBatchMatchesDifferential(accel, workload,
                                 Dataflow::kWeightStationary, faults);
}

TEST(BatchRunTest, RejectsEmptyBatchAndUnrebasedTransient) {
  const AccelConfig accel = SmallAccel();
  const WorkloadSpec workload = SmallGemm(8, 8, 8);
  GoldenTrace trace;
  FiRunner runner(accel);
  const RunResult golden = runner.RunGoldenRecorded(
      workload, Dataflow::kWeightStationary, &trace);
  EXPECT_THROW(runner.RunFaultyBatch(workload, Dataflow::kWeightStationary,
                                     {}, trace, golden),
               std::invalid_argument);
  FaultSpec fault;
  fault.kind = FaultKind::kTransientFlip;
  fault.pe = {0, 0};
  fault.signal = MacSignal::kAdderOut;
  fault.bit = 0;
  fault.at_cycle = -1;  // "whole run" is a per-experiment convention
  const std::vector<FaultSpec> faults{fault};
  EXPECT_THROW(runner.RunFaultyBatch(workload, Dataflow::kWeightStationary,
                                     faults, trace, golden),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
