#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::vector<std::int64_t> shape) {
  Int8Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-9, 9));
  }
  return t;
}

ConvParams MakeParams(std::int64_t n, std::int64_t c, std::int64_t hw,
                      std::int64_t k, std::int64_t rs, std::int64_t stride,
                      std::int64_t pad) {
  ConvParams p;
  p.batch = n;
  p.in_channels = c;
  p.height = hw;
  p.width = hw;
  p.out_channels = k;
  p.kernel_h = rs;
  p.kernel_w = rs;
  p.stride = stride;
  p.pad = pad;
  return p;
}

TEST(Im2ColTest, ShapesMatchPaperNotation) {
  const auto p = MakeParams(1, 3, 16, 8, 3, 1, 0);
  const auto input = Int8Tensor({1, 3, 16, 16});
  const auto kernel = Int8Tensor({8, 3, 3, 3});
  const auto a = Im2Col(input, p);
  const auto w = FlattenKernel(kernel, p);
  EXPECT_EQ(a.dim(0), p.gemm_rows());   // NPQ = 196
  EXPECT_EQ(a.dim(1), p.gemm_inner());  // CRS = 27
  EXPECT_EQ(w.dim(0), p.gemm_inner());
  EXPECT_EQ(w.dim(1), p.gemm_cols());   // K = 8
}

TEST(Im2ColTest, PatchOrderIsChannelMajor) {
  // CRS axis ordering must be c·R·S + r·S + s.
  const auto p = MakeParams(1, 2, 3, 1, 2, 1, 0);
  Int8Tensor input({1, 2, 3, 3});
  for (std::int64_t i = 0; i < input.size(); ++i) {
    input.flat(i) = static_cast<std::int8_t>(i);
  }
  const auto a = Im2Col(input, p);
  // First patch (p=0, q=0): channel 0 then channel 1, each row-major 2×2.
  EXPECT_EQ(a(0, 0), input(0, 0, 0, 0));
  EXPECT_EQ(a(0, 1), input(0, 0, 0, 1));
  EXPECT_EQ(a(0, 2), input(0, 0, 1, 0));
  EXPECT_EQ(a(0, 3), input(0, 0, 1, 1));
  EXPECT_EQ(a(0, 4), input(0, 1, 0, 0));
  EXPECT_EQ(a(0, 7), input(0, 1, 1, 1));
}

TEST(FlattenKernelTest, ColumnPerOutputChannel) {
  // The paper maps "each output channel to each column" (Sec. IV-A2):
  // column k of the lowered weight matrix must be kernel k.
  const auto p = MakeParams(1, 1, 4, 3, 2, 1, 0);
  Int8Tensor kernel({3, 1, 2, 2});
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t i = 0; i < 4; ++i) {
      kernel.flat(k * 4 + i) = static_cast<std::int8_t>(10 * k + i);
    }
  }
  const auto w = FlattenKernel(kernel, p);
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(w(i, k), 10 * k + i);
    }
  }
}

TEST(FoldGemmOutputTest, RoundTripsCoordinates) {
  const auto p = MakeParams(2, 1, 4, 3, 2, 1, 0);
  Int32Tensor gemm_out({p.gemm_rows(), p.gemm_cols()});
  for (std::int64_t i = 0; i < gemm_out.size(); ++i) {
    gemm_out.flat(i) = static_cast<std::int32_t>(i);
  }
  const auto folded = FoldGemmOutput(gemm_out, p);
  for (std::int64_t row = 0; row < p.gemm_rows(); ++row) {
    for (std::int64_t col = 0; col < p.gemm_cols(); ++col) {
      const auto coord = GemmCoordToConvCoord(row, col, p);
      EXPECT_EQ(folded(coord.n, coord.k, coord.p, coord.q),
                gemm_out(row, col));
    }
  }
}

TEST(GemmCoordToConvCoordTest, ChannelIsColumn) {
  const auto p = MakeParams(1, 3, 16, 8, 3, 1, 0);
  for (std::int64_t col = 0; col < 8; ++col) {
    EXPECT_EQ(GemmCoordToConvCoord(0, col, p).k, col);
    EXPECT_EQ(GemmCoordToConvCoord(100, col, p).k, col);
  }
  EXPECT_THROW(GemmCoordToConvCoord(p.gemm_rows(), 0, p),
               std::invalid_argument);
  EXPECT_THROW(GemmCoordToConvCoord(0, 8, p), std::invalid_argument);
}

// The headline property (paper Sec. II-B): lowering + GEMM + folding equals
// direct convolution, across a parameter sweep covering multi-batch,
// multi-channel, stride, and padding.
class Im2ColEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(Im2ColEquivalenceTest, LoweredGemmEqualsDirectConv) {
  const auto [n, c, hw, k, rs, stride, pad] = GetParam();
  const auto p = MakeParams(n, c, hw, k, rs, stride, pad);
  if (p.kernel_h > p.height + 2 * p.pad) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(n * 100000 + c * 10000 + hw * 1000 +
                                     k * 100 + rs * 10 + stride + pad));
  const auto input = RandomInt8(rng, {n, c, hw, hw});
  const auto kernel = RandomInt8(rng, {k, c, rs, rs});

  const auto direct = ConvRef(input, kernel, p);
  const auto lowered =
      FoldGemmOutput(GemmRef(Im2Col(input, p), FlattenKernel(kernel, p)), p);
  EXPECT_EQ(lowered, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Im2ColEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2),          // N
                       ::testing::Values(1, 3),          // C
                       ::testing::Values(5, 8),          // H=W
                       ::testing::Values(1, 4),          // K
                       ::testing::Values(1, 3),          // R=S
                       ::testing::Values(1, 2),          // stride
                       ::testing::Values(0, 1)));        // pad

// Table I workloads verified explicitly (the exact configurations the FI
// campaigns run).
TEST(Im2ColEquivalenceTest, PaperKernel3x3x3x3On16x16) {
  const auto p = MakeParams(1, 3, 16, 3, 3, 1, 0);
  Rng rng(2023);
  const auto input = RandomInt8(rng, {1, 3, 16, 16});
  const auto kernel = RandomInt8(rng, {3, 3, 3, 3});
  EXPECT_EQ(
      FoldGemmOutput(GemmRef(Im2Col(input, p), FlattenKernel(kernel, p)), p),
      ConvRef(input, kernel, p));
}

TEST(Im2ColEquivalenceTest, PaperKernel3x3x3x8On16x16) {
  const auto p = MakeParams(1, 3, 16, 8, 3, 1, 0);
  Rng rng(2024);
  const auto input = RandomInt8(rng, {1, 3, 16, 16});
  const auto kernel = RandomInt8(rng, {8, 3, 3, 3});
  EXPECT_EQ(
      FoldGemmOutput(GemmRef(Im2Col(input, p), FlattenKernel(kernel, p)), p),
      ConvRef(input, kernel, p));
}

}  // namespace
}  // namespace saffire
