#include "tensor/tiling.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-30, 30));
  }
  return t;
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(112, 16), 7);
  EXPECT_THROW(CeilDiv(1, 0), std::invalid_argument);
  EXPECT_THROW(CeilDiv(-1, 2), std::invalid_argument);
}

TEST(TileGridTest, PaperGemm112On16x16Array) {
  // RQ3's 112×112 GEMM on the 16×16 array: 7 tiles per dimension.
  const TileGrid grid(112, 112, 112, 16, 16, 16);
  EXPECT_EQ(grid.m_tiles(), 7);
  EXPECT_EQ(grid.n_tiles(), 7);
  EXPECT_EQ(grid.k_tiles(), 7);
  EXPECT_EQ(grid.total_tiles(), 343);
  EXPECT_FALSE(grid.untiled());
}

TEST(TileGridTest, ExactFitIsUntiled) {
  const TileGrid grid(16, 16, 16, 16, 16, 16);
  EXPECT_TRUE(grid.untiled());
  EXPECT_EQ(grid.TileRows(0), 16);
  EXPECT_EQ(grid.TileCols(0), 16);
  EXPECT_EQ(grid.TileDepth(0), 16);
}

TEST(TileGridTest, RaggedEdgeExtents) {
  const TileGrid grid(18, 5, 33, 16, 16, 16);
  EXPECT_EQ(grid.m_tiles(), 2);
  EXPECT_EQ(grid.n_tiles(), 1);
  EXPECT_EQ(grid.k_tiles(), 3);
  EXPECT_EQ(grid.TileRows(0), 16);
  EXPECT_EQ(grid.TileRows(1), 2);
  EXPECT_EQ(grid.TileCols(0), 5);
  EXPECT_EQ(grid.TileDepth(2), 1);
  EXPECT_EQ(grid.RowStart(1), 16);
  EXPECT_EQ(grid.DepthStart(2), 32);
  EXPECT_THROW(grid.TileRows(2), std::invalid_argument);
}

TEST(TileGridTest, EnumerationCoversAllAndGroupsReductions) {
  const TileGrid grid(20, 20, 20, 16, 16, 16);
  const auto tiles = grid.EnumerateTiles();
  ASSERT_EQ(tiles.size(), 8u);
  // Reduction steps of one output tile must be consecutive.
  EXPECT_EQ(tiles[0].mi, 0);
  EXPECT_EQ(tiles[0].ni, 0);
  EXPECT_EQ(tiles[0].ki, 0);
  EXPECT_EQ(tiles[1].mi, 0);
  EXPECT_EQ(tiles[1].ni, 0);
  EXPECT_EQ(tiles[1].ki, 1);
  EXPECT_EQ(tiles[2].ni, 1);
}

TEST(ExtractTilePaddedTest, CopiesAndPads) {
  const auto m = Int8Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  const auto tile = ExtractTilePadded(m, 0, 1, 2, 2, 4, 4);
  EXPECT_EQ(tile.dim(0), 4);
  EXPECT_EQ(tile.dim(1), 4);
  EXPECT_EQ(tile(0, 0), 2);
  EXPECT_EQ(tile(0, 1), 3);
  EXPECT_EQ(tile(1, 0), 5);
  EXPECT_EQ(tile(1, 1), 6);
  EXPECT_EQ(tile(2, 2), 0);
  EXPECT_EQ(tile(3, 3), 0);
}

TEST(ExtractTilePaddedTest, RejectsOutOfRange) {
  const auto m = Int8Tensor({4, 4});
  EXPECT_THROW(ExtractTilePadded(m, 3, 0, 2, 1, 2, 2), std::invalid_argument);
  EXPECT_THROW(ExtractTilePadded(m, 0, 0, 3, 1, 2, 2), std::invalid_argument);
}

TEST(AccumulateTileTest, AddsRegionIgnoringPadding) {
  auto dest = Int32Tensor({3, 3});
  auto tile = Int32Tensor::FromRows({{1, 2, 99}, {3, 4, 99}, {99, 99, 99}});
  AccumulateTile(tile, 1, 1, 2, 2, dest);
  EXPECT_EQ(dest(1, 1), 1);
  EXPECT_EQ(dest(1, 2), 2);
  EXPECT_EQ(dest(2, 1), 3);
  EXPECT_EQ(dest(2, 2), 4);
  EXPECT_EQ(dest(0, 0), 0);
  AccumulateTile(tile, 1, 1, 2, 2, dest);
  EXPECT_EQ(dest(2, 2), 8);
}

// Property: the full tiled decomposition (Eq. 4) reconstructs the reference
// GEMM for arbitrary shapes, including ragged edges.
class TiledGemmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TiledGemmPropertyTest, TiledDecompositionMatchesReference) {
  const auto [m, n, k, tile] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10000 + n * 1000 + k * 10 + tile));
  const auto a = RandomInt8(rng, m, k);
  const auto b = RandomInt8(rng, k, n);
  const auto expected = GemmRef(a, b);

  const TileGrid grid(m, n, k, tile, tile, tile);
  Int32Tensor c({m, n});
  for (const TileCoord& t : grid.EnumerateTiles()) {
    const auto a_tile =
        ExtractTilePadded(a, grid.RowStart(t.mi), grid.DepthStart(t.ki),
                          grid.TileRows(t.mi), grid.TileDepth(t.ki),
                          tile, tile);
    const auto b_tile =
        ExtractTilePadded(b, grid.DepthStart(t.ki), grid.ColStart(t.ni),
                          grid.TileDepth(t.ki), grid.TileCols(t.ni),
                          tile, tile);
    Int32Tensor c_tile({tile, tile});
    GemmAccumulateRef(a_tile, b_tile, c_tile);
    AccumulateTile(c_tile, grid.RowStart(t.mi), grid.ColStart(t.ni),
                   grid.TileRows(t.mi), grid.TileCols(t.ni), c);
  }
  EXPECT_EQ(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledGemmPropertyTest,
    ::testing::Combine(::testing::Values(4, 16, 23), ::testing::Values(4, 17),
                       ::testing::Values(4, 16, 21),
                       ::testing::Values(4, 8, 16)));

// The paper's 2×2 worked example (Eq. 1–4): a 4×4 GEMM on a 2×2 tile size
// decomposes into eight tile multiplications and four additions.
TEST(TiledGemmTest, PaperWorkedExample) {
  const TileGrid grid(4, 4, 4, 2, 2, 2);
  EXPECT_EQ(grid.total_tiles(), 8);
  EXPECT_EQ(grid.m_tiles() * grid.n_tiles(), 4);
}

}  // namespace
}  // namespace saffire
