#include "tensor/transpose.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

TEST(TransposeTest, SwapsCoordinates) {
  const auto m = Int32Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  const auto t = Transpose(m);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(t(c, r), m(r, c));
    }
  }
}

TEST(TransposeTest, InvolutionAndEdgeShapes) {
  Rng rng(3);
  Int8Tensor m({5, 7});
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  }
  EXPECT_EQ(Transpose(Transpose(m)), m);
  const auto row = Int32Tensor::FromRows({{1, 2, 3}});
  EXPECT_EQ(Transpose(row).ShapeString(), "(3, 1)");
  const auto scalar = Int32Tensor({1, 1});
  EXPECT_EQ(Transpose(scalar), scalar);
}

TEST(TransposeTest, RejectsNonMatrix) {
  EXPECT_THROW(Transpose(Int32Tensor({2, 2, 2})), std::invalid_argument);
  EXPECT_THROW(Transpose(Int32Tensor({4})), std::invalid_argument);
}

TEST(TransposeTest, GemmTransposeIdentity) {
  // (A·B)ᵀ == Bᵀ·Aᵀ — the identity the input-stationary dataflow uses.
  Rng rng(9);
  Int8Tensor a({4, 6});
  Int8Tensor b({6, 5});
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-50, 50));
  }
  for (std::int64_t i = 0; i < b.size(); ++i) {
    b.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-50, 50));
  }
  EXPECT_EQ(Transpose(GemmRef(a, b)), GemmRef(Transpose(b), Transpose(a)));
}

}  // namespace
}  // namespace saffire
