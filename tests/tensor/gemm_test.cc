#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  }
  return t;
}

TEST(GemmRefTest, TwoByTwoKnownAnswer) {
  const auto a = Int8Tensor::FromRows({{1, 2}, {3, 4}});
  const auto b = Int8Tensor::FromRows({{5, 6}, {7, 8}});
  const auto c = GemmRef(a, b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(GemmRefTest, IdentityIsNeutral) {
  Rng rng(1);
  const auto a = RandomInt8(rng, 5, 5);
  auto eye = Int8Tensor({5, 5});
  for (std::int64_t i = 0; i < 5; ++i) eye(i, i) = 1;
  EXPECT_EQ(GemmRef(a, eye), a.Cast<std::int32_t>());
  EXPECT_EQ(GemmRef(eye, a), a.Cast<std::int32_t>());
}

TEST(GemmRefTest, AllOnesCountsInnerDimension) {
  // The paper's pattern-extraction workload: all-ones operands make every
  // output equal K (Challenge 2, Sec. III-A).
  const auto a = Int8Tensor::Full({4, 7}, 1);
  const auto b = Int8Tensor::Full({7, 3}, 1);
  const auto c = GemmRef(a, b);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.flat(i), 7);
  }
}

TEST(GemmRefTest, RejectsMismatchedShapes) {
  const auto a = Int8Tensor({2, 3});
  const auto b = Int8Tensor({4, 2});
  EXPECT_THROW(GemmRef(a, b), std::invalid_argument);
}

TEST(GemmRefTest, RejectsNonMatrix) {
  const auto a = Int8Tensor({2, 3, 4});
  const auto b = Int8Tensor({4, 2});
  EXPECT_THROW(GemmRef(a, b), std::invalid_argument);
}

TEST(GemmRefTest, ExtremeOperandValuesDoNotOverflowInt32) {
  // 16 accumulations of (-128 × -128) stay well inside int32.
  const auto a = Int8Tensor::Full({1, 16}, -128);
  const auto b = Int8Tensor::Full({16, 1}, -128);
  const auto c = GemmRef(a, b);
  EXPECT_EQ(c(0, 0), 16 * 128 * 128);
}

TEST(GemmAccumulateRefTest, AddsIntoExisting) {
  const auto a = Int8Tensor::FromRows({{1, 1}});
  const auto b = Int8Tensor::FromRows({{2}, {3}});
  auto c = Int32Tensor::FromRows({{100}});
  GemmAccumulateRef(a, b, c);
  EXPECT_EQ(c(0, 0), 105);
  GemmAccumulateRef(a, b, c);
  EXPECT_EQ(c(0, 0), 110);
}

TEST(GemmAccumulateRefTest, RejectsWrongOutputShape) {
  const auto a = Int8Tensor({2, 2});
  const auto b = Int8Tensor({2, 2});
  auto c = Int32Tensor({2, 3});
  EXPECT_THROW(GemmAccumulateRef(a, b, c), std::invalid_argument);
}

TEST(GemmRefTest, FloatVariantMatchesManual) {
  const auto a = FloatTensor::FromRows({{0.5f, 1.5f}});
  const auto b = FloatTensor::FromRows({{2.0f}, {4.0f}});
  const auto c = GemmRef(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 7.0f);
}

// Property: GEMM distributes over K-splits — A·B == A1·B1 + A2·B2 where
// A = [A1 | A2], B = [B1 ; B2]. This is the algebraic identity tiling
// relies on (Eq. 4 in the paper).
class GemmSplitPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmSplitPropertyTest, KSplitAccumulates) {
  const auto [m, k, n, split] = GetParam();
  if (split >= k) GTEST_SKIP() << "split outside K";
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n * 10 + split));
  const auto a = RandomInt8(rng, m, k);
  const auto b = RandomInt8(rng, k, n);
  const auto full = GemmRef(a, b);

  Int8Tensor a1({m, split});
  Int8Tensor a2({m, k - split});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      if (j < split) {
        a1(i, j) = a(i, j);
      } else {
        a2(i, j - split) = a(i, j);
      }
    }
  }
  Int8Tensor b1({split, n});
  Int8Tensor b2({k - split, n});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i < split) {
        b1(i, j) = b(i, j);
      } else {
        b2(i - split, j) = b(i, j);
      }
    }
  }
  Int32Tensor sum({m, n});
  GemmAccumulateRef(a1, b1, sum);
  GemmAccumulateRef(a2, b2, sum);
  EXPECT_EQ(sum, full);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSplitPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(2, 5, 16),
                       ::testing::Values(1, 4, 9), ::testing::Values(1, 3)));

}  // namespace
}  // namespace saffire
