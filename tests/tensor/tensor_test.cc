#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Int32Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.size(), 12);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.flat(i), 0);
  }
}

TEST(TensorTest, FullFillsValue) {
  const auto t = Int8Tensor::Full({2, 2}, 1);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.flat(i), 1);
  }
}

TEST(TensorTest, RejectsBadShapes) {
  EXPECT_THROW(Int32Tensor({}), std::invalid_argument);
  EXPECT_THROW(Int32Tensor({0}), std::invalid_argument);
  EXPECT_THROW(Int32Tensor({2, -1}), std::invalid_argument);
}

TEST(TensorTest, RejectsHugeShapes) {
  EXPECT_THROW(Int32Tensor({1 << 20, 1 << 20, 1 << 20}),
               std::invalid_argument);
}

TEST(TensorTest, Rank2AccessIsRowMajor) {
  Int32Tensor t({2, 3});
  int v = 0;
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      t(r, c) = v++;
    }
  }
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.flat(i), i);
  }
}

TEST(TensorTest, Rank2AccessBoundsChecked) {
  Int32Tensor t({2, 3});
  EXPECT_THROW(t(2, 0), std::invalid_argument);
  EXPECT_THROW(t(0, 3), std::invalid_argument);
  EXPECT_THROW(t(-1, 0), std::invalid_argument);
}

TEST(TensorTest, Rank2AccessOnWrongRankThrows) {
  Int32Tensor t({2, 3, 4});
  EXPECT_THROW(t(0, 0), std::invalid_argument);
}

TEST(TensorTest, Rank4AccessIsNchwOrdered) {
  Int32Tensor t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 99;
  // Flat offset = ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(t.flat(119), 99);
  EXPECT_THROW(t(2, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(t(0, 3, 0, 0), std::invalid_argument);
}

TEST(TensorTest, FromRowsBuildsMatrix) {
  const auto t = Int32Tensor::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_EQ(t(2, 1), 6);
  EXPECT_THROW(Int32Tensor::FromRows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(TensorTest, ReshapePreservesData) {
  auto t = Int32Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  const auto r = t.Reshape({3, 2});
  EXPECT_EQ(r(0, 0), 1);
  EXPECT_EQ(r(0, 1), 2);
  EXPECT_EQ(r(1, 0), 3);
  EXPECT_EQ(r(2, 1), 6);
  EXPECT_THROW(t.Reshape({4, 2}), std::invalid_argument);
}

TEST(TensorTest, CastConverts) {
  const auto t = Int32Tensor::FromRows({{1, -2}, {127, 0}});
  const auto c = t.Cast<std::int8_t>();
  EXPECT_EQ(c(0, 0), 1);
  EXPECT_EQ(c(0, 1), -2);
  EXPECT_EQ(c(1, 0), 127);
}

TEST(TensorTest, EqualityComparesShapeAndData) {
  const auto a = Int32Tensor::FromRows({{1, 2}});
  const auto b = Int32Tensor::FromRows({{1, 2}});
  auto c = Int32Tensor::FromRows({{1, 3}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  // Same data, different shape.
  const auto d = a.Reshape({2, 1});
  EXPECT_FALSE(a == d);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Int32Tensor({2, 3}).ShapeString(), "(2, 3)");
  EXPECT_EQ(Int32Tensor({7}).ShapeString(), "(7)");
}

}  // namespace
}  // namespace saffire
