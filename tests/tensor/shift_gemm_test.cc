#include "tensor/shift_gemm.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::vector<std::int64_t> shape) {
  Int8Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-9, 9));
  }
  return t;
}

ConvParams MakeParams(std::int64_t n, std::int64_t c, std::int64_t hw,
                      std::int64_t k, std::int64_t rs, std::int64_t stride,
                      std::int64_t pad) {
  ConvParams p;
  p.batch = n;
  p.in_channels = c;
  p.height = hw;
  p.width = hw;
  p.out_channels = k;
  p.kernel_h = rs;
  p.kernel_w = rs;
  p.stride = stride;
  p.pad = pad;
  return p;
}

TEST(ShiftGemmDimsTest, PaperKernels) {
  // 3×3×3×3 on a 16×16 input: stationary matrix 9×9 — fits a 16×16 array.
  const auto small = MakeParams(1, 3, 16, 3, 3, 1, 0);
  EXPECT_EQ(ShiftGemmInner(small), 9);
  EXPECT_EQ(ShiftGemmCols(small), 9);
  EXPECT_EQ(ShiftGemmRows(small), 14 * 16);
  // 3×3×3×8: stationary matrix 9×24 — wider than the array → column tiling.
  const auto large = MakeParams(1, 3, 16, 8, 3, 1, 0);
  EXPECT_EQ(ShiftGemmInner(large), 9);
  EXPECT_EQ(ShiftGemmCols(large), 24);
}

TEST(ShiftGemmTest, KernelColumnsAreKMajor) {
  const auto p = MakeParams(1, 2, 4, 3, 2, 1, 0);
  Int8Tensor kernel({3, 2, 2, 2});
  for (std::int64_t i = 0; i < kernel.size(); ++i) {
    kernel.flat(i) = static_cast<std::int8_t>(i + 1);
  }
  const auto w2 = ShiftGemmLowerKernel(kernel, p);
  EXPECT_EQ(w2.dim(0), 4);  // C·R
  EXPECT_EQ(w2.dim(1), 6);  // S·K, k-major
  // Column k·S + s; row c·R + r.
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t s = 0; s < 2; ++s) {
      for (std::int64_t c = 0; c < 2; ++c) {
        for (std::int64_t r = 0; r < 2; ++r) {
          EXPECT_EQ(w2(c * 2 + r, k * 2 + s), kernel(k, c, r, s));
        }
      }
    }
  }
}

TEST(ShiftGemmTest, ColToChannel) {
  const auto p = MakeParams(1, 3, 16, 8, 3, 1, 0);
  EXPECT_EQ(ShiftGemmColToChannel(0, p), 0);
  EXPECT_EQ(ShiftGemmColToChannel(2, p), 0);
  EXPECT_EQ(ShiftGemmColToChannel(3, p), 1);
  EXPECT_EQ(ShiftGemmColToChannel(23, p), 7);
  EXPECT_THROW(ShiftGemmColToChannel(24, p), std::invalid_argument);
}

TEST(ShiftGemmTest, ColumnTileReuseSpansDistinctChannels) {
  // The mechanism behind the paper's multi-channel class: on a 16-column
  // array, columns c and c+16 of the 9×24 stationary matrix belong to
  // different output channels for every c < 8.
  const auto p = MakeParams(1, 3, 16, 8, 3, 1, 0);
  for (std::int64_t c = 0; c < 8; ++c) {
    EXPECT_NE(ShiftGemmColToChannel(c, p), ShiftGemmColToChannel(c + 16, p));
  }
}

// Equivalence: the shift-GEMM lowering computes exactly the direct
// convolution across batch/channel/stride/padding sweeps.
class ShiftGemmEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(ShiftGemmEquivalenceTest, MatchesDirectConv) {
  const auto [n, c, hw, k, rs, stride, pad] = GetParam();
  const auto p = MakeParams(n, c, hw, k, rs, stride, pad);
  if (p.kernel_h > p.height + 2 * p.pad) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(n * 100000 + c * 10000 + hw * 1000 +
                                     k * 100 + rs * 10 + stride + pad));
  const auto input = RandomInt8(rng, {n, c, hw, hw});
  const auto kernel = RandomInt8(rng, {k, c, rs, rs});
  EXPECT_EQ(ShiftGemmConvRef(input, kernel, p), ConvRef(input, kernel, p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftGemmEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2),    // N
                       ::testing::Values(1, 3),    // C
                       ::testing::Values(5, 8),    // H=W
                       ::testing::Values(1, 4),    // K
                       ::testing::Values(1, 3),    // R=S
                       ::testing::Values(1, 2),    // stride
                       ::testing::Values(0, 1)));  // pad

TEST(ShiftGemmEquivalenceTest, PaperConfigurations) {
  for (const auto& [k, hw] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {3, 16}, {8, 16}, {8, 112}}) {
    const auto p = MakeParams(1, 3, hw, k, 3, 1, 0);
    Rng rng(static_cast<std::uint64_t>(k * 1000 + hw));
    const auto input = RandomInt8(rng, {1, 3, hw, hw});
    const auto kernel = RandomInt8(rng, {k, 3, 3, 3});
    EXPECT_EQ(ShiftGemmConvRef(input, kernel, p), ConvRef(input, kernel, p))
        << "K=" << k << " HW=" << hw;
  }
}

TEST(ShiftGemmTest, FoldRejectsWrongShape) {
  const auto p = MakeParams(1, 1, 4, 1, 2, 1, 0);
  EXPECT_THROW(ShiftGemmFold(Int32Tensor({3, 3}), p), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
