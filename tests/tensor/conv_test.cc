#include "tensor/conv.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::vector<std::int64_t> shape) {
  Int8Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-8, 8));
  }
  return t;
}

TEST(ConvParamsTest, OutputDims) {
  ConvParams p;
  p.height = 16;
  p.width = 16;
  p.kernel_h = 3;
  p.kernel_w = 3;
  EXPECT_EQ(p.out_height(), 14);
  EXPECT_EQ(p.out_width(), 14);
  p.pad = 1;
  EXPECT_EQ(p.out_height(), 16);
  p.stride = 2;
  EXPECT_EQ(p.out_height(), 8);
}

TEST(ConvParamsTest, GemmDimsMatchPaperNotation) {
  // Paper Sec. II-B: input lowers to NPQ × CRS, kernel to CRS × K.
  ConvParams p;
  p.batch = 2;
  p.in_channels = 3;
  p.height = 16;
  p.width = 16;
  p.out_channels = 8;
  p.kernel_h = 3;
  p.kernel_w = 3;
  EXPECT_EQ(p.gemm_rows(), 2 * 14 * 14);
  EXPECT_EQ(p.gemm_inner(), 3 * 3 * 3);
  EXPECT_EQ(p.gemm_cols(), 8);
}

TEST(ConvParamsTest, ValidateRejectsDegenerate) {
  ConvParams p;
  p.height = 2;
  p.width = 2;
  p.kernel_h = 3;
  p.kernel_w = 1;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.kernel_h = 1;
  p.stride = 0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.stride = 1;
  p.pad = -1;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.pad = 0;
  EXPECT_NO_THROW(p.Validate());
}

TEST(ConvParamsTest, KernelShorthandMatchesTable1) {
  ConvParams p;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.in_channels = 3;
  p.out_channels = 8;
  p.height = 16;
  p.width = 16;
  EXPECT_EQ(KernelShorthand(p), "3x3x3x8");
}

TEST(ConvRefTest, OneByOneKernelIsChannelMix) {
  // 1×1 kernel over a 1-channel input scales every pixel.
  ConvParams p;
  p.height = 3;
  p.width = 3;
  Int8Tensor input({1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) input.flat(i) = static_cast<std::int8_t>(i);
  auto kernel = Int8Tensor({1, 1, 1, 1});
  kernel.flat(0) = 2;
  const auto out = ConvRef(input, kernel, p);
  EXPECT_EQ(out.ShapeString(), "(1, 1, 3, 3)");
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(out.flat(i), 2 * i);
  }
}

TEST(ConvRefTest, KnownThreeByThree) {
  ConvParams p;
  p.height = 3;
  p.width = 3;
  p.kernel_h = 3;
  p.kernel_w = 3;
  Int8Tensor input({1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) input.flat(i) = static_cast<std::int8_t>(i + 1);
  const auto kernel = Int8Tensor::Full({1, 1, 3, 3}, 1);
  const auto out = ConvRef(input, kernel, p);
  EXPECT_EQ(out.ShapeString(), "(1, 1, 1, 1)");
  EXPECT_EQ(out(0, 0, 0, 0), 45);  // sum 1..9
}

TEST(ConvRefTest, PaddingContributesZero) {
  ConvParams p;
  p.height = 2;
  p.width = 2;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.pad = 1;
  const auto input = Int8Tensor::Full({1, 1, 2, 2}, 1);
  const auto kernel = Int8Tensor::Full({1, 1, 3, 3}, 1);
  const auto out = ConvRef(input, kernel, p);
  EXPECT_EQ(out.ShapeString(), "(1, 1, 2, 2)");
  // Each output sees exactly the 4 real pixels minus those shifted out.
  EXPECT_EQ(out(0, 0, 0, 0), 4);
  EXPECT_EQ(out(0, 0, 0, 1), 4);
  EXPECT_EQ(out(0, 0, 1, 0), 4);
  EXPECT_EQ(out(0, 0, 1, 1), 4);
}

TEST(ConvRefTest, MultiChannelSumsOverC) {
  ConvParams p;
  p.in_channels = 3;
  p.height = 2;
  p.width = 2;
  p.kernel_h = 1;
  p.kernel_w = 1;
  const auto input = Int8Tensor::Full({1, 3, 2, 2}, 2);
  const auto kernel = Int8Tensor::Full({1, 3, 1, 1}, 3);
  const auto out = ConvRef(input, kernel, p);
  EXPECT_EQ(out(0, 0, 0, 0), 3 * 2 * 3);
}

TEST(ConvRefTest, StrideSkipsPositions) {
  ConvParams p;
  p.height = 4;
  p.width = 4;
  p.kernel_h = 2;
  p.kernel_w = 2;
  p.stride = 2;
  Int8Tensor input({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) input.flat(i) = static_cast<std::int8_t>(i);
  const auto kernel = Int8Tensor::Full({1, 1, 2, 2}, 1);
  const auto out = ConvRef(input, kernel, p);
  EXPECT_EQ(out.ShapeString(), "(1, 1, 2, 2)");
  EXPECT_EQ(out(0, 0, 0, 0), 0 + 1 + 4 + 5);
  EXPECT_EQ(out(0, 0, 1, 1), 10 + 11 + 14 + 15);
}

TEST(ConvRefTest, RejectsShapeMismatches) {
  ConvParams p;
  p.height = 4;
  p.width = 4;
  const auto input = Int8Tensor({1, 1, 4, 5});  // W mismatch
  const auto kernel = Int8Tensor({1, 1, 1, 1});
  EXPECT_THROW(ConvRef(input, kernel, p), std::invalid_argument);
  const auto input_ok = Int8Tensor({1, 1, 4, 4});
  const auto kernel_bad = Int8Tensor({2, 1, 1, 1});  // K mismatch
  EXPECT_THROW(ConvRef(input_ok, kernel_bad, p), std::invalid_argument);
}

// Property: convolving with a one-hot kernel selects a shifted copy of the
// input (cross-correlation semantics).
class ConvOneHotTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvOneHotTest, OneHotKernelShifts) {
  const auto [dr, ds] = GetParam();
  ConvParams p;
  p.height = 5;
  p.width = 5;
  p.kernel_h = 3;
  p.kernel_w = 3;
  Rng rng(static_cast<std::uint64_t>(dr * 10 + ds));
  const auto input = RandomInt8(rng, {1, 1, 5, 5});
  Int8Tensor kernel({1, 1, 3, 3});
  kernel(0, 0, dr, ds) = 1;
  const auto out = ConvRef(input, kernel, p);
  for (std::int64_t pp = 0; pp < 3; ++pp) {
    for (std::int64_t q = 0; q < 3; ++q) {
      EXPECT_EQ(out(0, 0, pp, q), input(0, 0, pp + dr, q + ds));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, ConvOneHotTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace saffire
