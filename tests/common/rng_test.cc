#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace saffire {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 11);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 11);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(3, 3), 3);
  }
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.UniformInt(2, 1), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(1234);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformInt(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    // 5σ tolerance for a binomial(kDraws, 1/16) count.
    const double sigma = std::sqrt(expected * (1.0 - 1.0 / kBuckets));
    EXPECT_NEAR(counts[b], expected, 5 * sigma) << "bucket " << b;
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(8);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  EXPECT_THROW(rng.Bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.Bernoulli(1.1), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, SampleWithoutReplacementIsSortedDistinctInRange) {
  Rng rng(21);
  const auto sample = rng.SampleWithoutReplacement(1000, 50);
  ASSERT_EQ(sample.size(), 50u);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_GE(sample[i], 0);
    EXPECT_LT(sample[i], 1000);
    if (i > 0) {
      EXPECT_LT(sample[i - 1], sample[i]);
    }
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(22);
  const auto sample = rng.SampleWithoutReplacement(16, 16);
  ASSERT_EQ(sample.size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
  }
}

TEST(RngTest, SampleZero) {
  Rng rng(23);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(77);
  (void)parent_copy();  // align with the draw consumed by Fork
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace saffire
