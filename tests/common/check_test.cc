#include "common/check.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SAFFIRE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SAFFIRE_CHECK_MSG(true, "never shown"));
  EXPECT_NO_THROW(SAFFIRE_ASSERT(true));
}

TEST(CheckTest, FailingCheckThrowsInvalidArgument) {
  EXPECT_THROW(SAFFIRE_CHECK(1 == 2), std::invalid_argument);
}

TEST(CheckTest, FailingAssertThrowsInternalError) {
  EXPECT_THROW(SAFFIRE_ASSERT(false), InternalError);
  // InternalError is a logic_error, not an invalid_argument.
  EXPECT_THROW(SAFFIRE_ASSERT_MSG(false, "boom"), std::logic_error);
}

TEST(CheckTest, MessageCarriesExpressionLocationAndStream) {
  try {
    const int rows = -3;
    SAFFIRE_CHECK_MSG(rows > 0, "rows=" << rows);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rows > 0"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
    EXPECT_NE(what.find("rows=-3"), std::string::npos);
  }
}

TEST(CheckTest, AssertMessageMarksInternalInvariant) {
  try {
    SAFFIRE_ASSERT_MSG(2 < 1, "value=" << 42);
    FAIL() << "expected throw";
  } catch (const InternalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("internal invariant"), std::string::npos);
    EXPECT_NE(what.find("value=42"), std::string::npos);
  }
}

TEST(CheckTest, ExpressionEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto probe = [&evaluations]() {
    ++evaluations;
    return true;
  };
  SAFFIRE_CHECK(probe());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace saffire
