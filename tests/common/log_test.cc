#include "common/log.h"

#include <gtest/gtest.h>

namespace saffire {
namespace {

// The log level is process-global; restore it around each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(ToString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(ToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(ToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(ToString(LogLevel::kWarn), "WARN");
  EXPECT_EQ(ToString(LogLevel::kError), "ERROR");
}

TEST_F(LogTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kTrace);
  EXPECT_EQ(GetLogLevel(), LogLevel::kTrace);
}

TEST_F(LogTest, EnabledRespectsThreshold) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kTrace));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
}

TEST_F(LogTest, DisabledMacroSkipsMessageConstruction) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "built";
  };
  SAFFIRE_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  testing::internal::CaptureStderr();
  SAFFIRE_LOG_ERROR << expensive();
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(output.find("built"), std::string::npos);
  EXPECT_NE(output.find("[ERROR"), std::string::npos);
  EXPECT_NE(output.find("log_test.cc"), std::string::npos);
}

TEST_F(LogTest, StreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  SAFFIRE_LOG_INFO << "value=" << 42 << " pi=" << 3.5 << " flag=" << true;
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("value=42 pi=3.5 flag=1"), std::string::npos);
}

}  // namespace
}  // namespace saffire
