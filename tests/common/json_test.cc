#include "common/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

namespace saffire {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").is_null());
  EXPECT_EQ(JsonValue::Parse("true").AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false").AsBool(), false);
  EXPECT_EQ(JsonValue::Parse("42").AsInt(), 42);
  EXPECT_EQ(JsonValue::Parse("-7").AsInt(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").AsDouble(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, Int64RoundTripsExactly) {
  // 2^63 - 1 is not representable in a double; the raw-token design keeps
  // it exact.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(JsonValue::Parse(std::to_string(max)).AsInt(), max);
  const std::uint64_t umax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(JsonValue::Parse(std::to_string(umax)).AsUint(), umax);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b\\c\nd\te")").AsString(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::Parse(R"("Aé")").AsString(), "A\xc3\xa9");
}

TEST(JsonParseTest, ArraysAndObjects) {
  const JsonValue value = JsonValue::Parse(
      R"({"name":"sweep","bits":[4,8,31],"nested":{"ok":true}})");
  EXPECT_EQ(value.At("name").AsString(), "sweep");
  const auto& bits = value.At("bits").AsArray();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[1].AsInt(), 8);
  EXPECT_TRUE(value.At("nested").At("ok").AsBool());
  EXPECT_TRUE(value.Has("name"));
  EXPECT_FALSE(value.Has("missing"));
  EXPECT_EQ(value.Find("missing"), nullptr);
  EXPECT_THROW(value.At("missing"), std::invalid_argument);
  EXPECT_EQ(value.AsObject().size(), 3u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::Parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("truth"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("1 2"), std::invalid_argument);
}

TEST(JsonParseTest, KindMismatchThrows) {
  const JsonValue value = JsonValue::Parse("42");
  EXPECT_THROW(value.AsString(), std::invalid_argument);
  EXPECT_THROW(value.AsBool(), std::invalid_argument);
  EXPECT_THROW(value.AsArray(), std::invalid_argument);
  EXPECT_THROW(value.At("x"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("2.5").AsInt(), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("-1").AsUint(), std::invalid_argument);
}

TEST(JsonWriterTest, WritesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject()
      .Key("name").String("x")
      .Key("count").Int(-3)
      .Key("big").Uint(18446744073709551615ull)
      .Key("ok").Bool(true)
      .Key("none").Null()
      .Key("list").BeginArray().Int(1).Int(2).EndArray()
      .EndObject();
  EXPECT_EQ(os.str(),
            R"({"name":"x","count":-3,"big":18446744073709551615,)"
            R"("ok":true,"none":null,"list":[1,2]})");
}

TEST(JsonWriterTest, OutputReparses) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject()
      .Key("text").String("line\nbreak \"quoted\" \\slash")
      .Key("value").Double(0.5)
      .EndObject();
  const JsonValue value = JsonValue::Parse(os.str());
  EXPECT_EQ(value.At("text").AsString(), "line\nbreak \"quoted\" \\slash");
  EXPECT_DOUBLE_EQ(value.At("value").AsDouble(), 0.5);
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace saffire
