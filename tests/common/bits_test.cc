#include "common/bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

namespace saffire {
namespace {

TEST(SignExtendTest, IdentityWithin64Bits) {
  EXPECT_EQ(SignExtend(0, 64), 0);
  EXPECT_EQ(SignExtend(-1, 64), -1);
  EXPECT_EQ(SignExtend(123456789, 64), 123456789);
}

TEST(SignExtendTest, TruncatesPositiveOverflow) {
  // 8-bit: 128 wraps to -128.
  EXPECT_EQ(SignExtend(128, 8), -128);
  EXPECT_EQ(SignExtend(255, 8), -1);
  EXPECT_EQ(SignExtend(256, 8), 0);
  EXPECT_EQ(SignExtend(257, 8), 1);
}

TEST(SignExtendTest, PreservesInRangeValues) {
  for (int v = -128; v <= 127; ++v) {
    EXPECT_EQ(SignExtend(v, 8), v) << "v=" << v;
  }
}

TEST(SignExtendTest, NegativeValuesAtWiderWidths) {
  EXPECT_EQ(SignExtend(-1, 32), -1);
  EXPECT_EQ(SignExtend(std::int64_t{1} << 31, 32),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(SignExtend((std::int64_t{1} << 31) - 1, 32),
            std::numeric_limits<std::int32_t>::max());
}

TEST(SignExtendTest, SingleBitWidth) {
  EXPECT_EQ(SignExtend(0, 1), 0);
  EXPECT_EQ(SignExtend(1, 1), -1);  // the only set bit is the sign bit
}

TEST(SignExtendTest, RejectsBadWidths) {
  EXPECT_THROW(SignExtend(0, 0), std::invalid_argument);
  EXPECT_THROW(SignExtend(0, 65), std::invalid_argument);
  EXPECT_THROW(SignExtend(0, -3), std::invalid_argument);
}

TEST(ApplyStuckAtTest, StuckAt1SetsBit) {
  EXPECT_EQ(ApplyStuckAt(0, 0, StuckPolarity::kStuckAt1, 32), 1);
  EXPECT_EQ(ApplyStuckAt(0, 4, StuckPolarity::kStuckAt1, 32), 16);
  EXPECT_EQ(ApplyStuckAt(16, 4, StuckPolarity::kStuckAt1, 32), 16);
}

TEST(ApplyStuckAtTest, StuckAt0ClearsBit) {
  EXPECT_EQ(ApplyStuckAt(16, 4, StuckPolarity::kStuckAt0, 32), 0);
  EXPECT_EQ(ApplyStuckAt(17, 0, StuckPolarity::kStuckAt0, 32), 16);
  EXPECT_EQ(ApplyStuckAt(0, 7, StuckPolarity::kStuckAt0, 32), 0);
}

TEST(ApplyStuckAtTest, SignBitStuckAt1MakesNegative) {
  EXPECT_EQ(ApplyStuckAt(0, 31, StuckPolarity::kStuckAt1, 32),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(ApplyStuckAt(5, 7, StuckPolarity::kStuckAt1, 8), 5 - 128);
}

TEST(ApplyStuckAtTest, SignBitStuckAt0MakesNonNegative) {
  EXPECT_EQ(ApplyStuckAt(-1, 31, StuckPolarity::kStuckAt0, 32),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(ApplyStuckAt(-128, 7, StuckPolarity::kStuckAt0, 8), 0);
}

TEST(ApplyStuckAtTest, Idempotent) {
  // A permanent fault applied twice equals the fault applied once — the
  // property that makes repeated per-cycle application physical.
  for (const auto polarity :
       {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
    for (int bit = 0; bit < 32; ++bit) {
      const std::int64_t value = 0x5A5A5A5A;
      const std::int64_t once = ApplyStuckAt(value, bit, polarity, 32);
      EXPECT_EQ(ApplyStuckAt(once, bit, polarity, 32), once)
          << "bit=" << bit;
    }
  }
}

TEST(ApplyStuckAtTest, RejectsBitOutsideWidth) {
  EXPECT_THROW(ApplyStuckAt(0, 8, StuckPolarity::kStuckAt1, 8),
               std::invalid_argument);
  EXPECT_THROW(ApplyStuckAt(0, -1, StuckPolarity::kStuckAt1, 8),
               std::invalid_argument);
}

TEST(FlipBitTest, TogglesAndRestores) {
  const std::int64_t value = 12345;
  for (int bit = 0; bit < 32; ++bit) {
    const std::int64_t flipped = FlipBit(value, bit, 32);
    EXPECT_NE(flipped, value) << "bit=" << bit;
    EXPECT_EQ(FlipBit(flipped, bit, 32), value) << "bit=" << bit;
  }
}

TEST(FlipBitTest, FlippingSignBitNegates) {
  EXPECT_EQ(FlipBit(0, 7, 8), -128);
  EXPECT_EQ(FlipBit(-128, 7, 8), 0);
}

TEST(TestBitTest, MatchesShift) {
  const std::int64_t value = 0b1011001;
  EXPECT_TRUE(TestBit(value, 0));
  EXPECT_FALSE(TestBit(value, 1));
  EXPECT_FALSE(TestBit(value, 2));
  EXPECT_TRUE(TestBit(value, 3));
  EXPECT_TRUE(TestBit(value, 4));
  EXPECT_FALSE(TestBit(value, 5));
  EXPECT_TRUE(TestBit(value, 6));
}

TEST(TestBitTest, NegativeValuesHaveHighBitsSet) {
  EXPECT_TRUE(TestBit(-1, 63));
  EXPECT_TRUE(TestBit(-1, 0));
}

TEST(ToBinaryTest, FormatsMsbFirst) {
  EXPECT_EQ(ToBinary(5, 4), "0101");
  EXPECT_EQ(ToBinary(-1, 4), "1111");
  EXPECT_EQ(ToBinary(16, 8), "00010000");
}

TEST(StuckPolarityTest, ToStringNames) {
  EXPECT_EQ(ToString(StuckPolarity::kStuckAt0), "SA0");
  EXPECT_EQ(ToString(StuckPolarity::kStuckAt1), "SA1");
}

// Property sweep: ApplyStuckAt agrees with manual bit arithmetic on a grid
// of values, widths, bits, and polarities.
class StuckAtPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StuckAtPropertyTest, MatchesManualBitArithmetic) {
  const int width = std::get<0>(GetParam());
  const int bit = std::get<1>(GetParam());
  if (bit >= width) GTEST_SKIP() << "bit outside width";
  const std::int64_t probes[] = {0,  1,   -1,   2,    -2,   16,  -16,
                                 42, 127, -128, 1000, -999, 65535};
  for (const std::int64_t value : probes) {
    const auto uvalue = static_cast<std::uint64_t>(value);
    const std::uint64_t mask = std::uint64_t{1} << bit;
    EXPECT_EQ(ApplyStuckAt(value, bit, StuckPolarity::kStuckAt1, width),
              SignExtend(static_cast<std::int64_t>(uvalue | mask), width));
    EXPECT_EQ(ApplyStuckAt(value, bit, StuckPolarity::kStuckAt0, width),
              SignExtend(static_cast<std::int64_t>(uvalue & ~mask), width));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndBits, StuckAtPropertyTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 32, 64),
                       ::testing::Values(0, 1, 3, 7, 15, 31, 63)));

}  // namespace
}  // namespace saffire
