// CRC-32 is the integrity seal of checkpoint format v2: these tests pin
// the polynomial to the standard check value (so sealed checkpoints stay
// loadable across builds), and the properties the loader depends on —
// streaming equals one-shot, and any single corrupted byte changes the sum.
#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace saffire {
namespace {

TEST(Crc32Test, MatchesTheStandardCheckValue) {
  // CRC-32/ISO-HDLC check value: every conforming implementation maps
  // "123456789" to 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, PointerAndViewOverloadsAgree) {
  const std::string data = "{\"type\":\"record\",\"cycles\":110}";
  EXPECT_EQ(Crc32(data), Crc32(data.data(), data.size()));
}

TEST(Crc32Test, StreamingExtendEqualsOneShot) {
  const std::string whole = "The quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    const std::uint32_t prefix = Crc32(whole.data(), cut);
    const std::uint32_t streamed =
        ExtendCrc32(prefix, whole.data() + cut, whole.size() - cut);
    EXPECT_EQ(streamed, Crc32(whole)) << "cut at " << cut;
  }
}

TEST(Crc32Test, EverySingleByteCorruptionChangesTheSum) {
  // The property the checkpoint loader relies on: a bit-flipped digit in a
  // sealed line cannot collide back to the recorded CRC.
  std::string line = "{\"campaign\":0,\"experiment\":7,\"cycles\":110}";
  const std::uint32_t sealed = Crc32(line);
  for (std::size_t i = 0; i < line.size(); ++i) {
    for (const char flip : {char(0x01), char(0x04), char(0x80)}) {
      std::string corrupt = line;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      EXPECT_NE(Crc32(corrupt), sealed) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace saffire
