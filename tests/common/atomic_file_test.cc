// AtomicFileWriter backs every derived output whose partial form is
// misleading (merged CSVs, metrics expositions): the destination must only
// ever hold a complete file — the previous one until Commit(), the new one
// after — and abandoned writers must clean up their temporaries.
#include "common/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace saffire {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

TEST(AtomicFileTest, CommitMaterializesTheFileAndRemovesTheTemp) {
  const std::string path = TempPath("atomic_commit.txt");
  fs::remove(path);
  {
    AtomicFileWriter writer(path);
    EXPECT_FALSE(writer.committed());
    EXPECT_FALSE(fs::exists(path)) << "destination appeared before Commit";
    EXPECT_TRUE(fs::exists(writer.temp_path()));
    writer.stream() << "row1\nrow2\n";
    writer.Commit();
    EXPECT_TRUE(writer.committed());
    EXPECT_FALSE(fs::exists(writer.temp_path()));
  }
  EXPECT_EQ(ReadFile(path), "row1\nrow2\n");
  fs::remove(path);
}

TEST(AtomicFileTest, AbandonedWriterLeavesThePreviousFileIntact) {
  const std::string path = TempPath("atomic_abandon.txt");
  {
    std::ofstream out(path);
    out << "previous complete run\n";
  }
  std::string temp;
  {
    AtomicFileWriter writer(path);
    temp = writer.temp_path();
    writer.stream() << "half-writ";
    // No Commit(): simulates an error path unwinding past the writer.
  }
  EXPECT_EQ(ReadFile(path), "previous complete run\n");
  EXPECT_FALSE(fs::exists(temp)) << "abandoned temporary not cleaned up";
  fs::remove(path);
}

TEST(AtomicFileTest, CommitReplacesThePreviousFileAtomically) {
  const std::string path = TempPath("atomic_replace.txt");
  {
    std::ofstream out(path);
    out << "old\n";
  }
  AtomicFileWriter writer(path);
  EXPECT_EQ(ReadFile(path), "old\n") << "destination clobbered before Commit";
  writer.stream() << "new\n";
  writer.Commit();
  EXPECT_EQ(ReadFile(path), "new\n");
  fs::remove(path);
}

TEST(AtomicFileTest, UnwritableDestinationThrows) {
  const std::string path =
      TempPath("no-such-directory") + "/deep/output.csv";
  EXPECT_THROW(AtomicFileWriter writer(path), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
