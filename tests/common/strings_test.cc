#include "common/strings.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(JoinTest, BasicAndEdgeCases) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"", ""}, "|"), "|");
}

TEST(SplitTest, BasicAndEdgeCases) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitTest, RoundTripsWithJoin) {
  const std::vector<std::string> parts{"alpha", "beta", "", "delta"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nhi\r "), "hi");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(FormatDoubleTest, FixedDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
  EXPECT_THROW(FormatDouble(1.0, -1), std::invalid_argument);
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("long", 2), "long");
  EXPECT_EQ(PadRight("long", 2), "long");
  EXPECT_EQ(PadLeft("", 2), "  ");
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-17"), -17);
  EXPECT_EQ(ParseInt("  8  "), 8);
  EXPECT_EQ(ParseInt("0"), 0);
}

TEST(ParseIntTest, RejectsJunk) {
  EXPECT_THROW(ParseInt("4x"), std::invalid_argument);
  EXPECT_THROW(ParseInt(""), std::invalid_argument);
  EXPECT_THROW(ParseInt("3.5"), std::invalid_argument);
  EXPECT_THROW(ParseInt("abc"), std::invalid_argument);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("saffire", "saf"));
  EXPECT_TRUE(StartsWith("saffire", ""));
  EXPECT_FALSE(StartsWith("saf", "saffire"));
  EXPECT_FALSE(StartsWith("saffire", "ire"));
}

}  // namespace
}  // namespace saffire
