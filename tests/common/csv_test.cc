#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace saffire {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape("123"), "123");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.WriteRow({"1", "2"});
  writer.WriteRow({"x,y", "z"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n\"x,y\",z\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriterTest, RejectsWrongArity) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b", "c"});
  EXPECT_THROW(writer.WriteRow({"1", "2"}), std::invalid_argument);
  EXPECT_THROW(writer.WriteRow({"1", "2", "3", "4"}), std::invalid_argument);
  writer.WriteRow({"1", "2", "3"});
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(CsvWriterTest, RejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
