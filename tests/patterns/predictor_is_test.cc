// Determinism property under the input-stationary dataflow: predicted row
// patterns must match the cycle-accurate simulation exactly — extending
// the paper's WS/OS characterization to the third mapping it names.
#include <gtest/gtest.h>

#include "fi/runner.h"
#include "patterns/predictor.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

TEST(PredictorIsTest, UntiledGemmIsSingleRow) {
  const auto prediction = PredictPattern(
      Gemm16x16(), TestConfig(), Dataflow::kInputStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleRow);
  ASSERT_EQ(prediction.coords.size(), 16u);
  for (const MatrixCoord& coord : prediction.coords) {
    EXPECT_EQ(coord.row, 9);  // the faulty PE's column owns output row 9
  }
}

TEST(PredictorIsTest, TiledGemmIsRowMultiTile) {
  const auto prediction = PredictPattern(
      Gemm112x112(), TestConfig(), Dataflow::kInputStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleRowMultiTile);
  // Rows 9, 25, ..., 105 × 112 columns.
  EXPECT_EQ(prediction.coords.size(), 7u * 112u);
}

TEST(PredictorIsTest, FaultRowIrrelevant) {
  const auto config = TestConfig();
  const auto base = PredictPattern(
      Gemm16x16(), config, Dataflow::kInputStationary,
      StuckAtAdder(PeCoord{0, 9}, 8, StuckPolarity::kStuckAt1));
  for (std::int32_t row = 1; row < 16; ++row) {
    const auto other = PredictPattern(
        Gemm16x16(), config, Dataflow::kInputStationary,
        StuckAtAdder(PeCoord{row, 9}, 8, StuckPolarity::kStuckAt1));
    EXPECT_EQ(other.coords, base.coords);
  }
}

TEST(PredictorIsTest, ColumnBeyondStationaryOperandIsMasked) {
  // M = 4 occupies array columns 0..3; faults in columns 4..15 never touch
  // sampled output rows.
  WorkloadSpec narrow = Gemm16x16();
  narrow.m = 4;
  const auto prediction = PredictPattern(
      narrow, TestConfig(), Dataflow::kInputStationary,
      StuckAtAdder(PeCoord{2, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kMasked);
}

struct IsCase {
  const char* label;
  WorkloadSpec (*workload)();
};

class IsDeterminismTest : public ::testing::TestWithParam<IsCase> {};

TEST_P(IsDeterminismTest, PredictionMatchesSimulationExactly) {
  const AccelConfig config = TestConfig();
  const WorkloadSpec workload = GetParam().workload();
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(workload, Dataflow::kInputStationary);
  const auto context =
      MakeClassifyContext(workload, config, Dataflow::kInputStationary);
  const auto sites = AllPeCoords(config.array);
  for (std::size_t i = 0; i < sites.size(); i += 8) {
    const FaultSpec fault =
        StuckAtAdder(sites[i], 8, StuckPolarity::kStuckAt1);
    const auto faulty =
        runner.RunFaulty(workload, Dataflow::kInputStationary, {&fault, 1});
    const auto map = ExtractCorruption(golden.output, faulty.output);
    const auto prediction =
        PredictPattern(workload, config, Dataflow::kInputStationary, fault);
    EXPECT_EQ(Classify(map, context), prediction.pattern)
        << GetParam().label << " " << fault.ToString();
    EXPECT_EQ(map.corrupted, prediction.coords)
        << GetParam().label << " " << fault.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IsDeterminismTest,
    ::testing::Values(IsCase{"gemm16", &Gemm16x16},
                      IsCase{"gemm112", &Gemm112x112},
                      IsCase{"conv16k3", &Conv16Kernel3x3x3x3}),
    [](const ::testing::TestParamInfo<IsCase>& param_info) {
      return std::string(param_info.param.label);
    });

}  // namespace
}  // namespace saffire
