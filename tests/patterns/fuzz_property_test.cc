// Randomized end-to-end property test: across random array geometries,
// workload shapes, dataflows, operand fills, and fault parameters, the
// pipeline invariants must hold —
//   golden run == reference GEMM,
//   observed corruption ⊆ predicted reach,
//   fault injection never perturbs timing,
//   classification is total.
#include <gtest/gtest.h>

#include <algorithm>

#include "fi/runner.h"
#include "patterns/predictor.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

TEST(FuzzPropertyTest, PipelineInvariantsHoldOnRandomConfigurations) {
  Rng rng(20230706);
  constexpr int kIterations = 150;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    AccelConfig config;
    config.array.rows = static_cast<std::int32_t>(rng.UniformInt(2, 8));
    config.array.cols = static_cast<std::int32_t>(rng.UniformInt(2, 8));
    config.max_compute_rows =
        static_cast<std::int32_t>(rng.UniformInt(config.array.rows, 64));
    config.acc_rows = config.max_compute_rows;
    config.spad_rows = config.max_compute_rows +
                       std::max(config.array.rows, config.array.cols);
    config.dram_bytes = 1 << 20;

    WorkloadSpec workload;
    workload.name = "fuzz-" + std::to_string(iteration);
    workload.m = rng.UniformInt(1, 24);
    workload.k = rng.UniformInt(1, 24);
    workload.n = rng.UniformInt(1, 24);
    const OperandFill fills[] = {OperandFill::kOnes, OperandFill::kRandom,
                                 OperandFill::kNearZero};
    workload.input_fill = fills[rng.UniformInt(0, 2)];
    workload.weight_fill = fills[rng.UniformInt(0, 2)];
    workload.data_seed = rng();

    const Dataflow dataflows[] = {Dataflow::kWeightStationary,
                                  Dataflow::kOutputStationary,
                                  Dataflow::kInputStationary};
    const Dataflow dataflow = dataflows[rng.UniformInt(0, 2)];

    FaultSpec fault;
    fault.pe.row =
        static_cast<std::int32_t>(rng.UniformInt(0, config.array.rows - 1));
    fault.pe.col =
        static_cast<std::int32_t>(rng.UniformInt(0, config.array.cols - 1));
    const MacSignal signals[] = {MacSignal::kAdderOut, MacSignal::kMulOut,
                                 MacSignal::kWeightOperand};
    fault.signal = signals[rng.UniformInt(0, 2)];
    fault.bit = static_cast<int>(
        rng.UniformInt(0, SignalWidth(fault.signal, config.array) - 1));
    fault.polarity = rng.Bernoulli(0.5) ? StuckPolarity::kStuckAt1
                                        : StuckPolarity::kStuckAt0;

    SCOPED_TRACE(workload.ToString() + " | " + ToString(dataflow) + " | " +
                 fault.ToString() + " | array " + config.array.ToString());

    FiRunner runner(config);
    const RunResult golden = runner.RunGolden(workload, dataflow);
    const MaterializedWorkload operands = Materialize(workload);
    ASSERT_EQ(golden.output, GemmRef(operands.a, operands.b));

    const RunResult faulty = runner.RunFaulty(workload, dataflow, {&fault, 1});
    EXPECT_EQ(faulty.cycles, golden.cycles);
    EXPECT_EQ(faulty.pe_steps, golden.pe_steps);

    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    const ClassifyContext context =
        MakeClassifyContext(workload, config, dataflow);
    EXPECT_NO_THROW({ (void)Classify(map, context); });

    const PredictedPattern prediction =
        PredictPattern(workload, config, dataflow, fault);
    EXPECT_TRUE(std::includes(prediction.coords.begin(),
                              prediction.coords.end(), map.corrupted.begin(),
                              map.corrupted.end()));
    if (map.empty()) {
      // Masked observation is always admissible; nothing more to check.
      continue;
    }
    // A corrupted run must have activated the fault at least once.
    EXPECT_GT(faulty.fault_activations, 0u);
  }
}

}  // namespace
}  // namespace saffire
