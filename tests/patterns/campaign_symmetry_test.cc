// Symmetry-aware campaign dedup: a campaign that simulates one
// representative per equivalence class and synthesizes the member records
// must be indistinguishable — record for record, every field — from the
// exhaustive run, across dataflows, polarities, and engines, and the
// replicated-record self-check must stay silent while doing it.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-8";
  config.workload.m = config.workload.k = config.workload.n = 8;
  config.bit = 8;
  return config;
}

void ExpectSameRecords(const CampaignResult& a, const CampaignResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << label << " record " << i;
  }
}

TEST(CampaignSymmetryTest, PlanShrinksEligibleCampaigns) {
  CampaignConfig config = BaseConfig();
  config.symmetry = true;
  const PreparedCampaign prepared = PrepareCampaign(config);
  EXPECT_TRUE(prepared.SymmetryActive());
  EXPECT_EQ(prepared.symmetry_classes, 8u);  // one class per array row
  ASSERT_EQ(prepared.symmetry_rep_of.size(), 64u);
  for (std::size_t i = 0; i < prepared.symmetry_rep_of.size(); ++i) {
    EXPECT_LE(prepared.symmetry_rep_of[i], i);  // reps come first
  }
}

TEST(CampaignSymmetryTest, IneligibleCampaignsKeepFullPlan) {
  // Transient faults and uncovered signals never get a symmetry plan, even
  // when asked; neither does a campaign that opted out.
  CampaignConfig transient = BaseConfig();
  transient.symmetry = true;
  transient.kind = FaultKind::kTransientFlip;
  EXPECT_FALSE(PrepareCampaign(transient).SymmetryActive());

  CampaignConfig uncovered = BaseConfig();
  uncovered.symmetry = true;
  uncovered.signal = MacSignal::kActForward;
  EXPECT_FALSE(PrepareCampaign(uncovered).SymmetryActive());

  // Non-ones operand fills break the column-translation argument member
  // synthesis rests on (fault_activations / max_abs_delta become
  // data-dependent per site), so such campaigns simulate every site.
  CampaignConfig random_inputs = BaseConfig();
  random_inputs.symmetry = true;
  random_inputs.workload.input_fill = OperandFill::kRandom;
  EXPECT_FALSE(SymmetryEligibleCampaign(random_inputs));
  EXPECT_FALSE(PrepareCampaign(random_inputs).SymmetryActive());

  CampaignConfig near_zero_weights = BaseConfig();
  near_zero_weights.symmetry = true;
  near_zero_weights.workload.weight_fill = OperandFill::kNearZero;
  EXPECT_FALSE(SymmetryEligibleCampaign(near_zero_weights));
  EXPECT_FALSE(PrepareCampaign(near_zero_weights).SymmetryActive());

  EXPECT_FALSE(PrepareCampaign(BaseConfig()).SymmetryActive());
}

TEST(CampaignSymmetryTest, SerialMatchesExhaustiveAcrossMatrix) {
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
      for (const CampaignEngine engine :
           {CampaignEngine::kDifferential, CampaignEngine::kBatch,
            CampaignEngine::kPredicted, CampaignEngine::kFull}) {
        CampaignConfig config = BaseConfig();
        config.dataflow = dataflow;
        config.polarity = polarity;
        config.engine = engine;
        // bit 3 straddles the activation boundary with ones fill (the last
        // row's running sum reaches 8), the hardest case for synthesis.
        config.bit = 3;
        SCOPED_TRACE(config.ToString());
        const CampaignResult exhaustive = RunCampaignSerial(config);
        config.symmetry = true;
        const CampaignResult reduced = RunCampaignSerial(config);
        ExpectSameRecords(exhaustive, reduced, ToString(engine));
      }
    }
  }
}

TEST(CampaignSymmetryTest, ExecutorSelfCheckPassesOnReplicatedRecords) {
  // Every replicated record cross-validated against a direct run of the
  // same engine: zero mismatches, and the parallel record stream equals
  // the exhaustive one.
  for (const CampaignEngine engine :
       {CampaignEngine::kDifferential, CampaignEngine::kBatch,
        CampaignEngine::kPredicted}) {
    CampaignConfig config = BaseConfig();
    config.engine = engine;
    config.bit = 3;
    const CampaignResult exhaustive = RunCampaignSerial(config);

    config.symmetry = true;
    RunOptions options;
    options.max_parallelism = 4;
    options.resilience.selfcheck_rate = 1.0;
    CollectorSink collector;
    const SweepOutcome outcome =
        RunSweep(SingleCampaignPlan(config), options, collector);
    EXPECT_GT(outcome.selfchecks, 0) << ToString(engine);
    EXPECT_EQ(outcome.selfcheck_mismatches, 0) << ToString(engine);
    EXPECT_EQ(outcome.quarantined, 0) << ToString(engine);

    std::vector<CampaignResult> results = collector.TakeResults();
    ASSERT_EQ(results.size(), 1u) << ToString(engine);
    ExpectSameRecords(exhaustive, results.front(), ToString(engine));
  }
}

TEST(CampaignSymmetryTest, SampledSitesReplicateFromEarliestMember) {
  // A sampled campaign's sites arrive in shuffled order; representatives
  // follow that order, not the array order, and the reduced run still
  // matches the exhaustive one.
  CampaignConfig config = BaseConfig();
  config.max_sites = 23;
  const CampaignResult exhaustive = RunCampaignSerial(config);
  config.symmetry = true;
  const CampaignResult reduced = RunCampaignSerial(config);
  ExpectSameRecords(exhaustive, reduced, "sampled");
}

TEST(CampaignSymmetryTest, MemoComputeOnceProtocol) {
  // First acquirer owns the computation; a Fulfill publishes to later
  // acquirers; an Abandon hands ownership back to the next acquirer.
  SymmetryMemo memo;
  ExperimentRecord record;
  EXPECT_FALSE(memo.AcquireOrOwn(7, &record));  // we own it
  memo.Abandon(7);
  EXPECT_FALSE(memo.AcquireOrOwn(7, &record));  // ownership re-claimable
  ExperimentRecord published;
  published.corrupted_count = 42;
  memo.Fulfill(7, published);
  EXPECT_TRUE(memo.AcquireOrOwn(7, &record));
  EXPECT_EQ(record.corrupted_count, 42);
  // An unrelated representative is independent.
  EXPECT_FALSE(memo.AcquireOrOwn(3, &record));
  memo.Fulfill(3, ExperimentRecord{});
  EXPECT_TRUE(memo.AcquireOrOwn(3, &record));
}

TEST(CampaignSymmetryTest, DisabledMemoFallsBackToDirectSimulation) {
  CampaignConfig config = BaseConfig();
  config.symmetry = true;
  const PreparedCampaign prepared = PrepareCampaign(config);
  ASSERT_TRUE(prepared.SymmetryActive());
  prepared.symmetry_memo->Disable();
  EXPECT_FALSE(prepared.SymmetryActive());
  // Runs still work (and simulate directly) after a class is distrusted.
  FiRunner runner(config.accel);
  const ExperimentRecord direct =
      RunPreparedExperiment(prepared, runner, /*index=*/9);
  EXPECT_EQ(direct.fault.pe, prepared.sites[9]);
}

}  // namespace
}  // namespace saffire
