#include "patterns/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 4;
  config.array.cols = 4;
  config.max_compute_rows = 16;
  config.spad_rows = 32;
  config.acc_rows = 16;
  config.dram_bytes = 1 << 18;
  return config;
}

CampaignConfig SmallCampaign() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-4";
  config.workload.m = config.workload.k = config.workload.n = 4;
  config.bit = 8;
  return config;
}

TEST(RenderCorruptionMapTest, MarksCorruptedCellsAndTiles) {
  CorruptionMap map;
  map.rows = 4;
  map.cols = 4;
  map.corrupted = {{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  ClassifyContext context;
  context.rows = 4;
  context.cols = 4;
  context.tile_rows = 2;
  context.tile_cols = 2;
  const std::string rendered = RenderCorruptionMap(map, context);
  EXPECT_EQ(rendered,
            ".#|..\n"
            ".#|..\n"
            "--+--\n"
            ".#|..\n"
            ".#|..\n");
}

TEST(RenderCorruptionMapTest, TruncatesTallMaps) {
  CorruptionMap map;
  map.rows = 100;
  map.cols = 2;
  ClassifyContext context;
  context.rows = 100;
  context.cols = 2;
  context.tile_rows = 100;
  context.tile_cols = 2;
  const std::string rendered = RenderCorruptionMap(map, context, 10);
  EXPECT_NE(rendered.find("(90 more rows)"), std::string::npos);
}

TEST(RenderHistogramTest, ShowsCountsAndPercentages) {
  const auto result = RunCampaignSerial(SmallCampaign());
  const std::string histogram = RenderHistogram(result);
  EXPECT_NE(histogram.find("single-column"), std::string::npos);
  EXPECT_NE(histogram.find("16"), std::string::npos);
  EXPECT_NE(histogram.find("100.0%"), std::string::npos);
}

TEST(RenderCampaignSummaryTest, CoversKeyFields) {
  const auto result = RunCampaignSerial(SmallCampaign());
  const std::string summary = RenderCampaignSummary(result);
  EXPECT_NE(summary.find("experiments: 16"), std::string::npos);
  EXPECT_NE(summary.find("dominant class: single-column"),
            std::string::npos);
  EXPECT_NE(summary.find("single-class property (non-masked): HOLDS"),
            std::string::npos);
  EXPECT_NE(summary.find("predictor class agreement: 100.0%"),
            std::string::npos);
}

TEST(WriteCampaignCsvTest, OneRowPerExperiment) {
  const auto result = RunCampaignSerial(SmallCampaign());
  std::ostringstream out;
  WriteCampaignCsv(result, out);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 17u);  // header + 16 experiments
  EXPECT_NE(csv.find("workload,dataflow,pe_row"), std::string::npos);
  EXPECT_NE(csv.find("single-column"), std::string::npos);
  EXPECT_NE(csv.find("gemm-4"), std::string::npos);
}

}  // namespace
}  // namespace saffire
