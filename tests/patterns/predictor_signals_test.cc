// Generalizing the determinism claim beyond the paper's injection site:
// faults on the multiplier output and the weight operand share the adder
// fault's reach, and on the extraction workload the prediction is exact
// for them too.
#include <gtest/gtest.h>

#include <algorithm>

#include "fi/runner.h"
#include "patterns/predictor.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

FaultSpec MakeFault(PeCoord pe, MacSignal signal, int bit) {
  FaultSpec fault;
  fault.pe = pe;
  fault.signal = signal;
  fault.bit = bit;
  fault.polarity = StuckPolarity::kStuckAt1;
  return fault;
}

TEST(PredictorSignalsTest, MulAndWeightShareAdderReach) {
  const auto config = TestConfig();
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    const auto adder = PredictPattern(
        Gemm112x112(), config, dataflow,
        MakeFault(PeCoord{4, 9}, MacSignal::kAdderOut, 8));
    const auto mul = PredictPattern(
        Gemm112x112(), config, dataflow,
        MakeFault(PeCoord{4, 9}, MacSignal::kMulOut, 8));
    const auto weight = PredictPattern(
        Gemm112x112(), config, dataflow,
        MakeFault(PeCoord{4, 9}, MacSignal::kWeightOperand, 5));
    EXPECT_EQ(mul.coords, adder.coords) << ToString(dataflow);
    EXPECT_EQ(weight.coords, adder.coords) << ToString(dataflow);
    EXPECT_EQ(mul.pattern, adder.pattern) << ToString(dataflow);
  }
}

TEST(PredictorSignalsTest, ForwardingSignalsRejected) {
  const auto config = TestConfig();
  EXPECT_THROW(PredictPattern(Gemm16x16(), config,
                              Dataflow::kWeightStationary,
                              MakeFault(PeCoord{0, 0},
                                        MacSignal::kActForward, 2)),
               std::invalid_argument);
  EXPECT_THROW(PredictPattern(Gemm16x16(), config,
                              Dataflow::kWeightStationary,
                              MakeFault(PeCoord{0, 0},
                                        MacSignal::kSouthForward, 2)),
               std::invalid_argument);
}

struct SignalCase {
  const char* label;
  MacSignal signal;
  int bit;
  Dataflow dataflow;
};

class SignalDeterminismTest : public ::testing::TestWithParam<SignalCase> {};

// On the all-ones extraction workload the corrupted product/weight is the
// same for every stream element, so the observed corruption equals the
// predicted reach exactly — for all three MAC-local signals.
TEST_P(SignalDeterminismTest, ExactOnExtractionWorkload) {
  const auto& tc = GetParam();
  const auto config = TestConfig();
  const auto workload = Gemm16x16();
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, tc.dataflow);
  const auto context = MakeClassifyContext(workload, config, tc.dataflow);
  const auto sites = AllPeCoords(config.array);
  for (std::size_t i = 0; i < sites.size(); i += 16) {
    const FaultSpec fault = MakeFault(sites[i], tc.signal, tc.bit);
    const auto faulty = runner.RunFaulty(workload, tc.dataflow, {&fault, 1});
    const auto map = ExtractCorruption(golden.output, faulty.output);
    const auto prediction =
        PredictPattern(workload, config, tc.dataflow, fault);
    EXPECT_EQ(map.corrupted, prediction.coords)
        << tc.label << " " << fault.ToString();
    EXPECT_EQ(Classify(map, context), prediction.pattern)
        << tc.label << " " << fault.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Signals, SignalDeterminismTest,
    ::testing::Values(
        SignalCase{"mul_ws", MacSignal::kMulOut, 8,
                   Dataflow::kWeightStationary},
        SignalCase{"mul_os", MacSignal::kMulOut, 8,
                   Dataflow::kOutputStationary},
        SignalCase{"mul_is", MacSignal::kMulOut, 8,
                   Dataflow::kInputStationary},
        SignalCase{"weight_ws", MacSignal::kWeightOperand, 3,
                   Dataflow::kWeightStationary},
        SignalCase{"weight_os", MacSignal::kWeightOperand, 3,
                   Dataflow::kOutputStationary}),
    [](const ::testing::TestParamInfo<SignalCase>& param_info) {
      return std::string(param_info.param.label);
    });

// With arbitrary operands the observation must stay inside the reach
// (containment), for every MAC-local signal.
TEST(PredictorSignalsTest, ContainmentForRandomOperands) {
  const auto config = TestConfig();
  WorkloadSpec workload = Gemm16x16();
  workload.input_fill = OperandFill::kRandom;
  workload.weight_fill = OperandFill::kRandom;
  FiRunner runner(config);
  for (const MacSignal signal :
       {MacSignal::kAdderOut, MacSignal::kMulOut,
        MacSignal::kWeightOperand}) {
    const int bit = signal == MacSignal::kWeightOperand ? 3 : 8;
    for (const Dataflow dataflow :
         {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
      const auto golden = runner.RunGolden(workload, dataflow);
      for (std::int32_t d = 0; d < 16; d += 5) {
        const FaultSpec fault = MakeFault(PeCoord{d, 15 - d}, signal, bit);
        const auto faulty =
            runner.RunFaulty(workload, dataflow, {&fault, 1});
        const auto map = ExtractCorruption(golden.output, faulty.output);
        const auto prediction =
            PredictPattern(workload, config, dataflow, fault);
        EXPECT_TRUE(std::includes(prediction.coords.begin(),
                                  prediction.coords.end(),
                                  map.corrupted.begin(),
                                  map.corrupted.end()))
            << ToString(signal) << " " << ToString(dataflow) << " "
            << fault.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace saffire
