#include "patterns/dictionary.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

TEST(FaultDictionaryTest, BuildCapturesConfiguration) {
  const auto dictionary = BuildFaultDictionary(
      Gemm16x16(), TestConfig(), Dataflow::kWeightStationary);
  EXPECT_EQ(dictionary.workload_name, "gemm-16x16");
  EXPECT_EQ(dictionary.dataflow, Dataflow::kWeightStationary);
  EXPECT_EQ(dictionary.array_rows, 16);
  EXPECT_EQ(dictionary.array_cols, 16);
  EXPECT_EQ(dictionary.gemm_m, 16);
  EXPECT_EQ(dictionary.classes.size(), 16u);  // one per array column
}

TEST(FaultDictionaryTest, JsonContainsSchemaFields) {
  const auto dictionary = BuildFaultDictionary(
      Gemm16x16(), TestConfig(), Dataflow::kOutputStationary);
  const std::string json = ToJson(dictionary);
  EXPECT_NE(json.find("\"workload\":\"gemm-16x16\""), std::string::npos);
  EXPECT_NE(json.find("\"dataflow\":\"OS\""), std::string::npos);
  EXPECT_NE(json.find("\"array\":{\"rows\":16,\"cols\":16}"),
            std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"single-element\""), std::string::npos);
}

TEST(FaultDictionaryTest, RoundTripsExactly) {
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    for (const WorkloadSpec& workload :
         {Gemm16x16(), Conv16Kernel3x3x3x8()}) {
      const auto original =
          BuildFaultDictionary(workload, TestConfig(), dataflow);
      const auto parsed = FaultDictionaryFromJson(ToJson(original));
      EXPECT_EQ(parsed, original)
          << workload.name << " " << ToString(dataflow);
    }
  }
}

TEST(FaultDictionaryTest, ParserAcceptsWhitespace) {
  const auto original = BuildFaultDictionary(
      Gemm16x16(), TestConfig(), Dataflow::kWeightStationary);
  std::string json = ToJson(original);
  // Inject whitespace after every comma and brace.
  std::string spaced;
  for (const char c : json) {
    spaced.push_back(c);
    if (c == ',' || c == '{' || c == '[' || c == ':') spaced += "\n  ";
  }
  EXPECT_EQ(FaultDictionaryFromJson(spaced), original);
}

TEST(FaultDictionaryTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(FaultDictionaryFromJson(""), std::invalid_argument);
  EXPECT_THROW(FaultDictionaryFromJson("{"), std::invalid_argument);
  EXPECT_THROW(FaultDictionaryFromJson("{\"bogus\":1}"),
               std::invalid_argument);
  EXPECT_THROW(FaultDictionaryFromJson("{\"workload\":\"x\"} trailing"),
               std::invalid_argument);
  EXPECT_THROW(
      FaultDictionaryFromJson("{\"dataflow\":\"XX\"}"),
      std::invalid_argument);
  EXPECT_THROW(
      FaultDictionaryFromJson(
          "{\"classes\":[{\"pattern\":\"no-such-class\",\"sites\":[[0,0]],"
          "\"coords\":[]}]}"),
      std::invalid_argument);
  // A class without sites has no representative.
  EXPECT_THROW(
      FaultDictionaryFromJson(
          "{\"classes\":[{\"pattern\":\"masked\",\"sites\":[],"
          "\"coords\":[]}]}"),
      std::invalid_argument);
}

TEST(FaultDictionaryTest, MaskedClassSerializesEmptyCoords) {
  // conv 3×3×3×3 under WS has a masked class (unused columns).
  const auto dictionary = BuildFaultDictionary(
      Conv16Kernel3x3x3x3(), TestConfig(), Dataflow::kWeightStationary);
  const std::string json = ToJson(dictionary);
  EXPECT_NE(json.find("\"pattern\":\"masked\""), std::string::npos);
  EXPECT_NE(json.find("\"coords\":[]"), std::string::npos);
  EXPECT_EQ(FaultDictionaryFromJson(json), dictionary);
}

TEST(FaultDictionaryTest, SiteCountsPartitionTheArray) {
  const auto dictionary = BuildFaultDictionary(
      Gemm112x112(), TestConfig(), Dataflow::kOutputStationary);
  std::int64_t total = 0;
  for (const auto& equivalence : dictionary.classes) {
    total += static_cast<std::int64_t>(equivalence.members.size());
  }
  EXPECT_EQ(total, 256);
}

}  // namespace
}  // namespace saffire
