// Transient-flip campaigns: the Rech et al. fault model run through the
// same exhaustive methodology, contrasting with permanent stuck-at faults.
#include <gtest/gtest.h>

#include "patterns/campaign.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig TransientConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-8";
  config.workload.m = config.workload.k = config.workload.n = 8;
  config.kind = FaultKind::kTransientFlip;
  config.bit = 8;
  return config;
}

TEST(TransientCampaignTest, RunsAndBoundsCorruption) {
  const auto result = RunCampaignSerial(TransientConfig());
  ASSERT_EQ(result.records.size(), 64u);
  for (const ExperimentRecord& record : result.records) {
    // One flipped cycle can corrupt at most one output element under WS
    // (one partial sum on the faulty column's chain).
    EXPECT_LE(record.corrupted_count, 1) << record.fault.ToString();
    EXPECT_LE(record.fault_activations, 1u);
    // And whatever it corrupts lies inside the permanent fault's reach.
    if (record.corrupted_count > 0) {
      EXPECT_TRUE(record.observed_within_predicted)
          << record.fault.ToString();
    }
  }
  // Strikes landing on preload/DMA/drain or pad cycles are masked; with a
  // uniform strike over the whole window a fair share must still hit.
  EXPECT_GT(result.MaskedCount(), 0);
  EXPECT_LT(result.MaskedCount(),
            static_cast<std::int64_t>(result.records.size()));
}

TEST(TransientCampaignTest, DeterministicInSeed) {
  const auto first = RunCampaignSerial(TransientConfig());
  const auto second = RunCampaignSerial(TransientConfig());
  ASSERT_EQ(first.records.size(), second.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].fault.at_cycle,
              second.records[i].fault.at_cycle);
    EXPECT_EQ(first.records[i].observed, second.records[i].observed);
  }
  auto reseeded_config = TransientConfig();
  reseeded_config.seed = 99;
  const auto reseeded = RunCampaignSerial(reseeded_config);
  bool any_difference = false;
  for (std::size_t i = 0; i < reseeded.records.size(); ++i) {
    if (reseeded.records[i].fault.at_cycle !=
        first.records[i].fault.at_cycle) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(TransientCampaignTest, PermanentCorruptsStrictlyMore) {
  auto permanent_config = TransientConfig();
  permanent_config.kind = FaultKind::kStuckAt;
  const auto permanent = RunCampaignSerial(permanent_config);
  const auto transient = RunCampaignSerial(TransientConfig());
  std::int64_t permanent_total = 0;
  std::int64_t transient_total = 0;
  for (const auto& record : permanent.records) {
    permanent_total += record.corrupted_count;
  }
  for (const auto& record : transient.records) {
    transient_total += record.corrupted_count;
  }
  EXPECT_GT(permanent_total, 4 * transient_total);
}

TEST(TransientCampaignTest, ToStringMentionsTransient) {
  EXPECT_NE(TransientConfig().ToString().find("transient-flip"),
            std::string::npos);
}

}  // namespace
}  // namespace saffire
