// The predicted campaign engine (the algebraic short circuit) must be
// indistinguishable from the batch engine in every record it emits — the
// ISSUE's acceptance criterion: byte-identical record streams across the
// full equivalence matrix, with the closed form serving exactly the
// provably-exact (kind, signal) combinations and everything else flowing
// through the batch residue path.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"
#include "patterns/report.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-12";
  config.workload.m = config.workload.k = config.workload.n = 12;
  config.bit = 8;
  return config;
}

CampaignResult RunParallel(const CampaignConfig& config, int threads) {
  RunOptions options;
  options.max_parallelism = threads;
  CollectorSink collector;
  RunSweep(SingleCampaignPlan(config), options, collector);
  std::vector<CampaignResult> results = collector.TakeResults();
  EXPECT_EQ(results.size(), 1u);
  return std::move(results.front());
}

// Renders both engines' record streams through the shared CSV schema and
// compares the bytes — the strictest equivalence the report layer can see.
void ExpectSameCsv(const CampaignResult& want, const CampaignResult& got) {
  std::ostringstream want_csv;
  std::ostringstream got_csv;
  WriteCampaignCsv(want, want_csv);
  WriteCampaignCsv(got, got_csv);
  EXPECT_EQ(want_csv.str(), got_csv.str());
}

void ExpectSameRecords(const CampaignResult& want, const CampaignResult& got) {
  ASSERT_EQ(want.records.size(), got.records.size());
  EXPECT_EQ(want.golden_cycles, got.golden_cycles);
  for (std::size_t i = 0; i < want.records.size(); ++i) {
    EXPECT_EQ(want.records[i], got.records[i]) << "record " << i;
  }
  ExpectSameCsv(want, got);
}

TEST(PredictedEngineNameTest, RoundTripsAndExtendsTheTable) {
  EXPECT_EQ(ToString(CampaignEngine::kPredicted), "predicted");
  EXPECT_EQ(ParseCampaignEngine("predicted"), CampaignEngine::kPredicted);
  EXPECT_EQ(CampaignEngineFromString("predicted"),
            CampaignEngine::kPredicted);
  EXPECT_THROW(ParseCampaignEngine("Predicted"), std::invalid_argument);
}

TEST(PredictedEngineExactTest, CoversPermanentPeLocalSignalsOnly) {
  auto config = BaseConfig();
  for (const MacSignal signal :
       {MacSignal::kWeightOperand, MacSignal::kMulOut, MacSignal::kAdderOut}) {
    config.signal = signal;
    config.kind = FaultKind::kStuckAt;
    EXPECT_TRUE(PredictedEngineExact(config)) << ToString(signal);
    config.kind = FaultKind::kTransientFlip;
    EXPECT_FALSE(PredictedEngineExact(config)) << ToString(signal);
  }
  config.kind = FaultKind::kStuckAt;
  for (const MacSignal signal :
       {MacSignal::kActForward, MacSignal::kSouthForward}) {
    config.signal = signal;
    EXPECT_FALSE(PredictedEngineExact(config)) << ToString(signal);
  }
}

TEST(PredictedCampaignTest, RejectsBadLaneCounts) {
  auto config = BaseConfig();
  config.engine = CampaignEngine::kPredicted;
  config.batch_lanes = 0;
  EXPECT_THROW(RunCampaignSerial(config), std::invalid_argument);
  config.batch_lanes = 4097;
  EXPECT_THROW(RunCampaignSerial(config), std::invalid_argument);
}

// The acceptance matrix: {OS, WS, IS} × {SA0, SA1} × every covered signal ×
// low/high bit, predicted vs batch. Full-field equality: the closed form
// reproduces even the pe_steps/pe_steps_skipped split and the activation
// counter bit-for-bit.
TEST(PredictedCampaignTest, MatrixMatchesBatchExactly) {
  struct SignalBits {
    MacSignal signal;
    int lo_bit;
    int hi_bit;  // width - 1 for the signal on the INT8/ACC32 array
  };
  const SignalBits cases[] = {
      {MacSignal::kWeightOperand, 0, 7},
      {MacSignal::kMulOut, 0, 15},
      {MacSignal::kAdderOut, 0, 31},
  };
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kInputStationary}) {
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
      for (const SignalBits& c : cases) {
        for (const int bit : {c.lo_bit, c.hi_bit}) {
          auto config = BaseConfig();
          config.dataflow = dataflow;
          config.polarity = polarity;
          config.signal = c.signal;
          config.bit = bit;
          SCOPED_TRACE(config.ToString());
          ASSERT_TRUE(PredictedEngineExact(config));

          config.engine = CampaignEngine::kBatch;
          const CampaignResult batch = RunCampaignSerial(config);
          config.engine = CampaignEngine::kPredicted;
          const CampaignResult predicted = RunCampaignSerial(config);

          ExpectSameRecords(batch, predicted);
          // The closed form never fills a lane.
          EXPECT_EQ(predicted.lanes_filled, 0u);
          EXPECT_EQ(predicted.batches_run, 0u);
        }
      }
    }
  }
}

// Workload shapes that stress the tiling: non-multiple edges (partial me /
// ne / ke tiles) and a k that fits one reduction tile.
TEST(PredictedCampaignTest, RaggedTilesMatchBatch) {
  struct Shape {
    std::int64_t m, k, n;
  };
  for (const Shape shape : {Shape{13, 9, 11}, Shape{5, 8, 17}, Shape{3, 3, 3},
                            Shape{16, 16, 16}}) {
    for (const Dataflow dataflow :
         {Dataflow::kOutputStationary, Dataflow::kWeightStationary}) {
      auto config = BaseConfig();
      config.workload.name = "gemm-ragged";
      config.workload.m = shape.m;
      config.workload.k = shape.k;
      config.workload.n = shape.n;
      config.dataflow = dataflow;
      config.signal = MacSignal::kMulOut;
      config.bit = 13;
      SCOPED_TRACE(config.ToString());

      config.engine = CampaignEngine::kBatch;
      const CampaignResult batch = RunCampaignSerial(config);
      config.engine = CampaignEngine::kPredicted;
      const CampaignResult predicted = RunCampaignSerial(config);
      ExpectSameRecords(batch, predicted);
    }
  }
}

// Transient campaigns are residue: kPredicted must silently route through
// the batch replay — identical records, and this time the lanes DO fill.
TEST(PredictedCampaignTest, TransientResidueRunsOnBatch) {
  auto config = BaseConfig();
  config.kind = FaultKind::kTransientFlip;
  ASSERT_FALSE(PredictedEngineExact(config));

  config.engine = CampaignEngine::kBatch;
  const CampaignResult batch = RunCampaignSerial(config);
  config.engine = CampaignEngine::kPredicted;
  const CampaignResult predicted = RunCampaignSerial(config);
  ExpectSameRecords(batch, predicted);
  EXPECT_EQ(predicted.lanes_filled, batch.lanes_filled);
  EXPECT_EQ(predicted.batches_run, batch.batches_run);
  EXPECT_GE(predicted.batches_run, 1u);
}

// Forwarding-chain signals are residue too (their corruption crosses PE
// boundaries, so no PE-local closed form exists).
TEST(PredictedCampaignTest, ForwardingSignalResidueRunsOnBatch) {
  auto config = BaseConfig();
  config.signal = MacSignal::kActForward;
  config.bit = 3;
  ASSERT_FALSE(PredictedEngineExact(config));

  config.engine = CampaignEngine::kBatch;
  const CampaignResult batch = RunCampaignSerial(config);
  config.engine = CampaignEngine::kPredicted;
  const CampaignResult predicted = RunCampaignSerial(config);
  ExpectSameRecords(batch, predicted);
  EXPECT_EQ(predicted.lanes_filled, batch.lanes_filled);
}

// Partial grouping boundaries must not change records (they cannot — the
// closed form is per-experiment — but the canonical group loop still walks
// them, so exercise a lane count that does not divide the site count).
TEST(PredictedCampaignTest, PartialGroupsAndSampledSitesMatch) {
  auto config = BaseConfig();
  config.max_sites = 17;
  config.batch_lanes = 5;
  config.engine = CampaignEngine::kBatch;
  const CampaignResult batch = RunCampaignSerial(config);
  config.engine = CampaignEngine::kPredicted;
  const CampaignResult predicted = RunCampaignSerial(config);
  ExpectSameRecords(batch, predicted);
  EXPECT_EQ(predicted.lanes_filled, 0u);
  EXPECT_EQ(predicted.batches_run, 0u);
}

// The executor path must agree with the serial ground truth.
TEST(PredictedCampaignTest, ParallelMatchesSerial) {
  auto config = BaseConfig();
  config.engine = CampaignEngine::kPredicted;
  const CampaignResult serial = RunCampaignSerial(config);
  for (const int threads : {1, 4}) {
    const CampaignResult parallel = RunParallel(config, threads);
    ExpectSameRecords(serial, parallel);
    EXPECT_EQ(parallel.lanes_filled, serial.lanes_filled) << threads;
    EXPECT_EQ(parallel.batches_run, serial.batches_run) << threads;
  }
}

}  // namespace
}  // namespace saffire
