#include "patterns/campaign.h"

#include <gtest/gtest.h>

#include <set>

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

WorkloadSpec SmallGemm(std::int64_t size) {
  WorkloadSpec spec;
  spec.name = "gemm-" + std::to_string(size);
  spec.op = OpType::kGemm;
  spec.m = spec.k = spec.n = size;
  return spec;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload = SmallGemm(8);
  config.bit = 8;
  config.polarity = StuckPolarity::kStuckAt1;
  return config;
}

TEST(CampaignSitesTest, ExhaustiveByDefault) {
  const auto sites = CampaignSites(BaseConfig());
  EXPECT_EQ(sites.size(), 64u);
  std::set<std::pair<int, int>> unique;
  for (const PeCoord site : sites) unique.insert({site.row, site.col});
  EXPECT_EQ(unique.size(), 64u);
}

TEST(CampaignSitesTest, SamplingIsDeterministicAndBounded) {
  CampaignConfig config = BaseConfig();
  config.max_sites = 10;
  const auto first = CampaignSites(config);
  const auto second = CampaignSites(config);
  EXPECT_EQ(first.size(), 10u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]);
  }
  config.seed = 2;
  const auto reseeded = CampaignSites(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < reseeded.size(); ++i) {
    if (!(reseeded[i] == first[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CampaignTest, WsGemmAllSitesSingleColumn) {
  // RQ1 in miniature: exhaustive WS campaign — every site yields the
  // single-column class and the predictor agrees exactly.
  CampaignConfig config = BaseConfig();
  config.dataflow = Dataflow::kWeightStationary;
  const auto result = RunCampaignSerial(config);
  ASSERT_EQ(result.records.size(), 64u);
  EXPECT_EQ(result.DominantClass(), PatternClass::kSingleColumn);
  EXPECT_TRUE(result.SingleClassProperty());
  EXPECT_EQ(result.MaskedCount(), 0);
  EXPECT_DOUBLE_EQ(result.ClassAgreement(), 1.0);
  EXPECT_DOUBLE_EQ(result.ExactAgreement(), 1.0);
  EXPECT_DOUBLE_EQ(result.ContainmentRate(), 1.0);
  const auto histogram = result.Histogram();
  EXPECT_EQ(histogram.at(PatternClass::kSingleColumn), 64);
}

TEST(CampaignTest, OsGemmAllSitesSingleElement) {
  CampaignConfig config = BaseConfig();
  config.dataflow = Dataflow::kOutputStationary;
  const auto result = RunCampaignSerial(config);
  EXPECT_EQ(result.DominantClass(), PatternClass::kSingleElement);
  EXPECT_TRUE(result.SingleClassProperty());
  EXPECT_DOUBLE_EQ(result.ExactAgreement(), 1.0);
}

TEST(CampaignTest, TiledGemmYieldsMultiTileClasses) {
  CampaignConfig config = BaseConfig();
  config.workload = SmallGemm(20);  // 3×3 output tiles on the 8×8 array
  config.dataflow = Dataflow::kWeightStationary;
  const auto ws = RunCampaignSerial(config);
  EXPECT_EQ(ws.DominantClass(), PatternClass::kSingleColumnMultiTile);
  EXPECT_TRUE(ws.SingleClassProperty());
  config.dataflow = Dataflow::kOutputStationary;
  const auto os = RunCampaignSerial(config);
  EXPECT_EQ(os.DominantClass(), PatternClass::kSingleElementMultiTile);
  EXPECT_TRUE(os.SingleClassProperty());
}

TEST(CampaignTest, OsCorruptsOneElementWsCorruptsWholeColumn) {
  // RQ1's fault-tolerance comparison: per experiment, OS corrupts exactly
  // one element while WS corrupts a full column.
  CampaignConfig config = BaseConfig();
  config.dataflow = Dataflow::kOutputStationary;
  const auto os = RunCampaignSerial(config);
  for (const ExperimentRecord& record : os.records) {
    EXPECT_EQ(record.corrupted_count, 1);
  }
  config.dataflow = Dataflow::kWeightStationary;
  const auto ws = RunCampaignSerial(config);
  for (const ExperimentRecord& record : ws.records) {
    EXPECT_EQ(record.corrupted_count, 8);
  }
}

TEST(CampaignTest, NearZeroWeightsMaskStuckAt0) {
  // Challenge 2: with near-zero operands most partial sums are zero, so a
  // stuck-at-0 fault rarely changes anything.
  CampaignConfig config = BaseConfig();
  config.workload.input_fill = OperandFill::kNearZero;
  config.workload.weight_fill = OperandFill::kNearZero;
  config.bit = 4;
  config.polarity = StuckPolarity::kStuckAt0;
  const auto result = RunCampaignSerial(config);
  // Mostly-zero partial sums leave bit 4 clear almost everywhere, so a
  // large fraction of sites are fully masked (negative sums, whose high
  // bits are set, keep it from being all of them).
  EXPECT_GT(result.MaskedCount(),
            static_cast<std::int64_t>(result.records.size()) / 4);
  // Whereas the paper's all-ones workload never masks (on a clear bit).
  CampaignConfig ones = BaseConfig();
  ones.polarity = StuckPolarity::kStuckAt1;
  EXPECT_EQ(RunCampaignSerial(ones).MaskedCount(), 0);
}

TEST(CampaignTest, RecordsCarryCostAndActivationData) {
  CampaignConfig config = BaseConfig();
  const auto result = RunCampaignSerial(config);
  EXPECT_GT(result.golden_cycles, 0);
  EXPECT_GT(result.golden_pe_steps, 0u);
  for (const ExperimentRecord& record : result.records) {
    EXPECT_EQ(record.cycles, result.golden_cycles);  // FI never alters timing
    EXPECT_GT(record.fault_activations, 0u);
    EXPECT_GT(record.max_abs_delta, 0);
  }
}

TEST(CampaignTest, SampledCampaignRunsRequestedSites) {
  CampaignConfig config = BaseConfig();
  config.max_sites = 7;
  const auto result = RunCampaignSerial(config);
  EXPECT_EQ(result.records.size(), 7u);
}

TEST(CampaignResultTest, SingleClassPropertyDetectsViolation) {
  CampaignResult result;
  ExperimentRecord a;
  a.observed = PatternClass::kSingleColumn;
  ExperimentRecord b;
  b.observed = PatternClass::kMasked;
  ExperimentRecord c;
  c.observed = PatternClass::kSingleElement;
  result.records = {a, b};
  EXPECT_TRUE(result.SingleClassProperty());
  result.records = {a, b, c};
  EXPECT_FALSE(result.SingleClassProperty());
}

}  // namespace
}  // namespace saffire
