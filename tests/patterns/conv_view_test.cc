// Folding corruption maps back to convolution output-channel space — the
// view the paper's Fig. 3e–3g panels actually show.
#include <gtest/gtest.h>

#include "fi/runner.h"
#include "patterns/report.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

CorruptionMap MapWithColumn(std::int64_t rows, std::int64_t cols,
                            std::int64_t corrupted_col) {
  CorruptionMap map;
  map.rows = rows;
  map.cols = cols;
  for (std::int64_t r = 0; r < rows; ++r) {
    map.corrupted.push_back(MatrixCoord{r, corrupted_col});
  }
  return map;
}

TEST(ConvCorruptionByChannelTest, Im2ColColumnIsFullChannel) {
  ClassifyContext context;
  context.op = OpType::kConv;
  context.lowering = ConvLowering::kIm2Col;
  context.conv.in_channels = 3;
  context.conv.height = 16;
  context.conv.width = 16;
  context.conv.out_channels = 8;
  context.conv.kernel_h = 3;
  context.conv.kernel_w = 3;
  context.rows = 14 * 14;
  context.cols = 8;
  context.tile_rows = 1024;
  context.tile_cols = 16;

  const auto by_channel = ConvCorruptionByChannel(
      MapWithColumn(context.rows, context.cols, 5), context);
  ASSERT_EQ(by_channel.size(), 1u);
  EXPECT_EQ(by_channel.begin()->first, 5);
  EXPECT_EQ(by_channel.begin()->second.size(), 14u * 14u);
}

TEST(ConvCorruptionByChannelTest, ShiftGemmColumnIsFullChannel) {
  ClassifyContext context;
  context.op = OpType::kConv;
  context.lowering = ConvLowering::kShiftGemm;
  context.conv.in_channels = 1;
  context.conv.height = 5;
  context.conv.width = 5;
  context.conv.out_channels = 2;
  context.conv.kernel_h = 3;
  context.conv.kernel_w = 3;
  context.rows = 3 * 5;  // P·(W+2·pad)
  context.cols = 6;      // S·K
  context.tile_rows = 1024;
  context.tile_cols = 16;

  // Column k=1, s=2.
  const auto by_channel = ConvCorruptionByChannel(
      MapWithColumn(context.rows, context.cols, 1 * 3 + 2), context);
  ASSERT_EQ(by_channel.size(), 1u);
  EXPECT_EQ(by_channel.begin()->first, 1);
  // Every pixel of the 3×3 output sees the s=2 contribution.
  EXPECT_EQ(by_channel.begin()->second.size(), 9u);
}

TEST(ConvCorruptionByChannelTest, StrideSkipsNonAlignedCells) {
  ClassifyContext context;
  context.op = OpType::kConv;
  context.lowering = ConvLowering::kShiftGemm;
  context.conv.in_channels = 1;
  context.conv.height = 6;
  context.conv.width = 6;
  context.conv.out_channels = 1;
  context.conv.kernel_h = 2;
  context.conv.kernel_w = 2;
  context.conv.stride = 2;
  context.rows = context.conv.out_height() * 6;  // 3·6
  context.cols = 2;
  context.tile_rows = 1024;
  context.tile_cols = 16;

  // Column (k=0, s=0): only even x positions feed an output pixel.
  const auto by_channel =
      ConvCorruptionByChannel(MapWithColumn(context.rows, 2, 0), context);
  ASSERT_EQ(by_channel.size(), 1u);
  // P = Q = 3: all 9 pixels still reached (via their own x = 2q).
  EXPECT_EQ(by_channel.begin()->second.size(), 9u);
}

TEST(ConvCorruptionByChannelTest, RejectsGemmContext) {
  ClassifyContext context;
  context.op = OpType::kGemm;
  context.rows = 4;
  context.cols = 4;
  context.tile_rows = 4;
  context.tile_cols = 4;
  CorruptionMap map;
  map.rows = 4;
  map.cols = 4;
  EXPECT_THROW(ConvCorruptionByChannel(map, context), std::invalid_argument);
}

TEST(ConvChannelViewTest, EndToEndMatchesPaperPanel3e) {
  // A WS fault on an active column of the 3×3×3×3 conv corrupts exactly
  // one output channel — every pixel of it.
  const auto config = TestConfig();
  const auto workload = Conv16Kernel3x3x3x3();
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{2, 4}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      runner.RunFaulty(workload, Dataflow::kWeightStationary, {&fault, 1});
  const auto map = ExtractCorruption(golden.output, faulty.output);
  const auto context =
      MakeClassifyContext(workload, config, Dataflow::kWeightStationary);

  const auto by_channel = ConvCorruptionByChannel(map, context);
  ASSERT_EQ(by_channel.size(), 1u);
  EXPECT_EQ(by_channel.begin()->first, 4 / 3);  // column 4 → channel 1
  EXPECT_EQ(by_channel.begin()->second.size(), 14u * 14u);

  const std::string rendered = RenderConvChannelMap(map, context, 4);
  EXPECT_NE(rendered.find("channel 1: 196/196 pixels corrupted"),
            std::string::npos);
  EXPECT_NE(rendered.find("##############"), std::string::npos);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
}

TEST(ConvChannelViewTest, EndToEndMatchesPaperPanel3f) {
  // The 3×3×3×8 kernel: a fault in a reused column corrupts two channels.
  const auto config = TestConfig();
  const auto workload = Conv16Kernel3x3x3x8();
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{2, 4}, 8, StuckPolarity::kStuckAt1);
  const auto faulty =
      runner.RunFaulty(workload, Dataflow::kWeightStationary, {&fault, 1});
  const auto map = ExtractCorruption(golden.output, faulty.output);
  const auto context =
      MakeClassifyContext(workload, config, Dataflow::kWeightStationary);

  const auto by_channel = ConvCorruptionByChannel(map, context);
  ASSERT_EQ(by_channel.size(), 2u);  // columns 4 and 20 → channels 1 and 6
  EXPECT_TRUE(by_channel.contains(1));
  EXPECT_TRUE(by_channel.contains(6));
  for (const auto& [channel, pixels] : by_channel) {
    EXPECT_EQ(pixels.size(), 14u * 14u) << "channel " << channel;
  }
}

TEST(ConvChannelViewTest, BatchedConvStaysDeterministic) {
  // Batch > 1 multiplies the streamed rows; the pattern machinery must
  // stay exact (the paper evaluates batch 1 only).
  const auto config = TestConfig();
  WorkloadSpec workload = Conv16Kernel3x3x3x3();
  workload.name = "conv-batch2";
  workload.conv.batch = 2;
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, Dataflow::kWeightStationary);
  const auto context =
      MakeClassifyContext(workload, config, Dataflow::kWeightStationary);
  for (const PeCoord site : {PeCoord{0, 0}, PeCoord{7, 4}, PeCoord{15, 8}}) {
    const FaultSpec fault = StuckAtAdder(site, 8, StuckPolarity::kStuckAt1);
    const auto faulty =
        runner.RunFaulty(workload, Dataflow::kWeightStationary, {&fault, 1});
    const auto map = ExtractCorruption(golden.output, faulty.output);
    const auto prediction = PredictPattern(
        workload, config, Dataflow::kWeightStationary, fault);
    EXPECT_EQ(map.corrupted, prediction.coords) << fault.ToString();
    if (!map.empty()) {
      // Both batch elements carry the full corrupted channel.
      const auto by_channel = ConvCorruptionByChannel(map, context);
      for (const auto& [channel, pixels] : by_channel) {
        EXPECT_EQ(pixels.size(), 14u * 14u) << "channel " << channel;
      }
    }
  }
}

TEST(ConvChannelViewTest, CleanMapRendersEmpty) {
  const auto config = TestConfig();
  const auto context = MakeClassifyContext(Conv16Kernel3x3x3x3(), config,
                                           Dataflow::kWeightStationary);
  CorruptionMap map;
  map.rows = context.rows;
  map.cols = context.cols;
  EXPECT_NE(RenderConvChannelMap(map, context)
                .find("no corrupted output channels"),
            std::string::npos);
}

}  // namespace
}  // namespace saffire
