// Validation of the paper's determinism claim (Sec. IV, Discussion): for
// every fault site, the analytically predicted fault pattern must match the
// cycle-accurate simulation — class and exact coordinates — on the
// pattern-extraction workload, and must contain the observed corruption for
// arbitrary operand values.
#include "patterns/predictor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "fi/runner.h"
#include "patterns/classify.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

TEST(PredictorTest, RejectsForwardingSignals) {
  FaultSpec fault = StuckAtAdder(PeCoord{0, 0}, 8, StuckPolarity::kStuckAt1);
  fault.signal = MacSignal::kActForward;
  fault.bit = 2;
  EXPECT_THROW(PredictPattern(Gemm16x16(), TestConfig(),
                              Dataflow::kWeightStationary, fault),
               std::invalid_argument);
}

TEST(PredictorTest, WsUntiledGemmIsSingleColumn) {
  const auto prediction = PredictPattern(
      Gemm16x16(), TestConfig(), Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleColumn);
  ASSERT_EQ(prediction.coords.size(), 16u);
  for (const MatrixCoord& coord : prediction.coords) {
    EXPECT_EQ(coord.col, 9);
  }
}

TEST(PredictorTest, OsUntiledGemmIsSingleElement) {
  const auto prediction = PredictPattern(
      Gemm16x16(), TestConfig(), Dataflow::kOutputStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleElement);
  ASSERT_EQ(prediction.coords.size(), 1u);
  EXPECT_EQ(prediction.coords[0], (MatrixCoord{4, 9}));
}

TEST(PredictorTest, WsTiledGemmIsColumnMultiTile) {
  const auto prediction = PredictPattern(
      Gemm112x112(), TestConfig(), Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleColumnMultiTile);
  // Columns 9, 25, ..., 105 × 112 rows.
  EXPECT_EQ(prediction.coords.size(), 7u * 112u);
}

TEST(PredictorTest, OsTiledGemmIsElementMultiTile) {
  const auto prediction = PredictPattern(
      Gemm112x112(), TestConfig(), Dataflow::kOutputStationary,
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleElementMultiTile);
  EXPECT_EQ(prediction.coords.size(), 49u);  // 7×7 tiles
}

TEST(PredictorTest, ConvUntiledKernelIsSingleChannel) {
  const auto prediction = PredictPattern(
      Conv16Kernel3x3x3x3(), TestConfig(), Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{2, 4}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kSingleChannel);
}

TEST(PredictorTest, ConvTiledKernelReusedColumnIsMultiChannel) {
  // Column 4 is reused by S·K columns 4 (channel 1) and 20 (channel 6).
  const auto prediction = PredictPattern(
      Conv16Kernel3x3x3x8(), TestConfig(), Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{2, 4}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kMultiChannel);
}

TEST(PredictorTest, ConvColumnBeyondOperandIsMasked) {
  // S·K = 9 for the 3×3×3×3 kernel: array columns 9..15 never carry
  // sampled outputs.
  const auto prediction = PredictPattern(
      Conv16Kernel3x3x3x3(), TestConfig(), Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{2, 12}, 8, StuckPolarity::kStuckAt1));
  EXPECT_EQ(prediction.pattern, PatternClass::kMasked);
  EXPECT_TRUE(prediction.coords.empty());
}

TEST(PredictorTest, FaultRowNeverChangesWsPrediction) {
  // In WS the whole column chain passes through every row — the paper's
  // symmetry observation.
  const auto config = TestConfig();
  const auto base = PredictPattern(
      Gemm16x16(), config, Dataflow::kWeightStationary,
      StuckAtAdder(PeCoord{0, 9}, 8, StuckPolarity::kStuckAt1));
  for (std::int32_t row = 1; row < 16; ++row) {
    const auto other = PredictPattern(
        Gemm16x16(), config, Dataflow::kWeightStationary,
        StuckAtAdder(PeCoord{row, 9}, 8, StuckPolarity::kStuckAt1));
    EXPECT_EQ(other.pattern, base.pattern);
    EXPECT_EQ(other.coords, base.coords);
  }
}

// --- The determinism property, simulated vs predicted ----------------------

struct DeterminismCase {
  const char* label;
  WorkloadSpec (*workload)();
  Dataflow dataflow;
  std::size_t site_stride;  // 1 = fully exhaustive over all 256 sites
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

// Predicted class and exact coordinates must match the simulation at every
// visited site (bit 8 stuck-at-1 always fires on the small all-ones
// values). The flagship 16x16 configurations are fully exhaustive (all 256
// sites); the expensive tiled ones visit every 8th site.
TEST_P(DeterminismTest, PredictionMatchesSimulationExactly) {
  const DeterminismCase& tc = GetParam();
  const AccelConfig config = TestConfig();
  const WorkloadSpec workload = tc.workload();
  FiRunner runner(config);
  const auto golden = runner.RunGolden(workload, tc.dataflow);
  const auto context = MakeClassifyContext(workload, config, tc.dataflow);

  const auto sites = AllPeCoords(config.array);
  for (std::size_t i = 0; i < sites.size(); i += tc.site_stride) {
    const FaultSpec fault =
        StuckAtAdder(sites[i], 8, StuckPolarity::kStuckAt1);
    const auto faulty = runner.RunFaulty(workload, tc.dataflow, {&fault, 1});
    const auto map = ExtractCorruption(golden.output, faulty.output);
    const auto observed = Classify(map, context);
    const auto prediction =
        PredictPattern(workload, config, tc.dataflow, fault);
    EXPECT_EQ(observed, prediction.pattern)
        << tc.label << " site " << fault.ToString();
    EXPECT_EQ(map.corrupted, prediction.coords)
        << tc.label << " site " << fault.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableI, DeterminismTest,
    ::testing::Values(
        DeterminismCase{"gemm16-ws", &Gemm16x16,
                        Dataflow::kWeightStationary, 1},
        DeterminismCase{"gemm16-os", &Gemm16x16,
                        Dataflow::kOutputStationary, 1},
        DeterminismCase{"gemm112-ws", &Gemm112x112,
                        Dataflow::kWeightStationary, 8},
        DeterminismCase{"gemm112-os", &Gemm112x112,
                        Dataflow::kOutputStationary, 8},
        DeterminismCase{"conv16-k3-ws", &Conv16Kernel3x3x3x3,
                        Dataflow::kWeightStationary, 1},
        DeterminismCase{"conv16-k8-ws", &Conv16Kernel3x3x3x8,
                        Dataflow::kWeightStationary, 1}),
    [](const ::testing::TestParamInfo<DeterminismCase>& param_info) {
      std::string name = param_info.param.label;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// With arbitrary (random) operand values, value-level masking may shrink
// the observed corruption, but it must stay inside the predicted reach.
TEST(PredictorTest, ObservedCorruptionContainedForRandomOperands) {
  const AccelConfig config = TestConfig();
  WorkloadSpec workload = Gemm16x16();
  workload.input_fill = OperandFill::kRandom;
  workload.weight_fill = OperandFill::kRandom;
  FiRunner runner(config);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    const auto golden = runner.RunGolden(workload, dataflow);
    for (std::size_t i = 0; i < 256; i += 16) {
      const FaultSpec fault = StuckAtAdder(
          PeCoord{static_cast<std::int32_t>(i / 16),
                  static_cast<std::int32_t>(i % 16)},
          0, StuckPolarity::kStuckAt0);
      const auto faulty = runner.RunFaulty(workload, dataflow, {&fault, 1});
      const auto map = ExtractCorruption(golden.output, faulty.output);
      const auto prediction =
          PredictPattern(workload, config, dataflow, fault);
      EXPECT_TRUE(std::includes(prediction.coords.begin(),
                                prediction.coords.end(),
                                map.corrupted.begin(), map.corrupted.end()))
          << ToString(dataflow) << " " << fault.ToString();
    }
  }
}

}  // namespace
}  // namespace saffire
