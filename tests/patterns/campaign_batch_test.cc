// The batch campaign engine must be indistinguishable from the reference
// and differential engines in every record it emits — the engine-equivalence
// matrix the ISSUE's acceptance criteria call for — while its occupancy
// counters (lanes_filled / batches_run) reflect the canonical
// batch_lanes-sized grouping, including partial final batches and W=1.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"
#include "patterns/report.h"
#include "systolic/simd_ops.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-12";
  config.workload.m = config.workload.k = config.workload.n = 12;
  config.bit = 8;
  return config;
}

CampaignResult RunParallel(const CampaignConfig& config, int threads) {
  RunOptions options;
  options.max_parallelism = threads;
  CollectorSink collector;
  RunSweep(SingleCampaignPlan(config), options, collector);
  std::vector<CampaignResult> results = collector.TakeResults();
  EXPECT_EQ(results.size(), 1u);
  return std::move(results.front());
}

// Folds the per-engine cost split into its engine-invariant sum
// (ExperimentRecord doc: kReference runs every PE, so its pe_steps equals
// the differential/batch engines' pe_steps + pe_steps_skipped).
ExperimentRecord CostNormalized(ExperimentRecord record) {
  record.pe_steps += record.pe_steps_skipped;
  record.pe_steps_skipped = 0;
  return record;
}

void ExpectSameRecords(const CampaignResult& want, const CampaignResult& got,
                       bool normalize_cost = false) {
  ASSERT_EQ(want.records.size(), got.records.size());
  EXPECT_EQ(want.golden_cycles, got.golden_cycles);
  for (std::size_t i = 0; i < want.records.size(); ++i) {
    if (normalize_cost) {
      EXPECT_EQ(CostNormalized(want.records[i]),
                CostNormalized(got.records[i]))
          << "record " << i;
    } else {
      EXPECT_EQ(want.records[i], got.records[i]) << "record " << i;
    }
  }
}

TEST(CampaignEngineNameTest, RoundTripsEveryEngine) {
  for (const CampaignEngine engine :
       {CampaignEngine::kDifferential, CampaignEngine::kFull,
        CampaignEngine::kReference, CampaignEngine::kBatch}) {
    EXPECT_EQ(ParseCampaignEngine(ToString(engine)), engine)
        << ToString(engine);
  }
  EXPECT_EQ(ToString(CampaignEngine::kBatch), "batch");
  EXPECT_EQ(CampaignEngineFromString("batch"), CampaignEngine::kBatch);
}

TEST(CampaignEngineNameTest, RejectsUnknownNames) {
  for (const char* name : {"", "Batch", "BATCH", "batched", "lane", "fast"}) {
    EXPECT_THROW(ParseCampaignEngine(name), std::invalid_argument) << name;
  }
}

TEST(BatchCampaignTest, RejectsBadLaneCounts) {
  auto config = BaseConfig();
  config.engine = CampaignEngine::kBatch;
  config.batch_lanes = 0;
  EXPECT_THROW(RunCampaignSerial(config), std::invalid_argument);
  config.batch_lanes = 4097;
  EXPECT_THROW(RunCampaignSerial(config), std::invalid_argument);
}

// The acceptance matrix: {OS, WS} × {SA0, SA1} × bits {0, 7, 31} ×
// {permanent, transient}, batch vs reference vs differential.
TEST(BatchCampaignTest, MatrixMatchesReferenceAndDifferential) {
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary}) {
    for (const StuckPolarity polarity :
         {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
      for (const int bit : {0, 7, 31}) {
        for (const FaultKind kind :
             {FaultKind::kStuckAt, FaultKind::kTransientFlip}) {
          auto config = BaseConfig();
          config.dataflow = dataflow;
          config.polarity = polarity;
          config.bit = bit;
          config.kind = kind;
          SCOPED_TRACE(config.ToString());

          config.engine = CampaignEngine::kReference;
          const CampaignResult reference = RunCampaignSerial(config);
          config.engine = CampaignEngine::kDifferential;
          const CampaignResult differential = RunCampaignSerial(config);
          config.engine = CampaignEngine::kBatch;
          const CampaignResult batch = RunCampaignSerial(config);

          ExpectSameRecords(reference, differential,
                            /*normalize_cost=*/true);
          ExpectSameRecords(reference, batch, /*normalize_cost=*/true);
          // Batch vs differential is exact — same cone, same cost split.
          ExpectSameRecords(differential, batch);
          EXPECT_EQ(batch.lanes_filled, batch.records.size());
          EXPECT_GE(batch.batches_run, 1u);
        }
      }
    }
  }
}

// 64 sites at 5 lanes per pass: 12 full batches plus a 4-lane final one.
TEST(BatchCampaignTest, PartialFinalBatchAndOccupancyCounters) {
  auto config = BaseConfig();
  config.engine = CampaignEngine::kDifferential;
  const CampaignResult differential = RunCampaignSerial(config);

  config.engine = CampaignEngine::kBatch;
  config.batch_lanes = 5;
  const CampaignResult batch = RunCampaignSerial(config);
  ExpectSameRecords(differential, batch);
  EXPECT_EQ(batch.records.size(), 64u);
  EXPECT_EQ(batch.lanes_filled, 64u);
  EXPECT_EQ(batch.batches_run, 13u);

  // The per-experiment engines leave the occupancy counters at zero.
  EXPECT_EQ(differential.lanes_filled, 0u);
  EXPECT_EQ(differential.batches_run, 0u);
}

// W=1 degenerates to one experiment per pass and must still agree.
TEST(BatchCampaignTest, SingleLaneBatchesMatch) {
  auto config = BaseConfig();
  config.max_sites = 6;
  config.engine = CampaignEngine::kDifferential;
  const CampaignResult differential = RunCampaignSerial(config);

  config.engine = CampaignEngine::kBatch;
  config.batch_lanes = 1;
  const CampaignResult batch = RunCampaignSerial(config);
  ExpectSameRecords(differential, batch);
  EXPECT_EQ(batch.lanes_filled, 6u);
  EXPECT_EQ(batch.batches_run, 6u);
}

// The executor path: parallel batch runs must match the serial ground truth
// record-for-record, and the canonical batch grouping keeps the occupancy
// counters thread-count-invariant.
TEST(BatchCampaignTest, ParallelMatchesSerial) {
  auto config = BaseConfig();
  config.engine = CampaignEngine::kBatch;
  config.batch_lanes = 5;
  const CampaignResult serial = RunCampaignSerial(config);
  for (const int threads : {1, 4}) {
    const CampaignResult parallel = RunParallel(config, threads);
    ExpectSameRecords(serial, parallel);
    EXPECT_EQ(parallel.lanes_filled, serial.lanes_filled) << threads;
    EXPECT_EQ(parallel.batches_run, serial.batches_run) << threads;
  }
}

// Transient batch campaigns agree across engines and dataflows too (strike
// offsets are pre-sampled, so engine choice cannot change the experiments).
TEST(BatchCampaignTest, TransientInputStationaryMatches) {
  auto config = BaseConfig();
  config.dataflow = Dataflow::kInputStationary;
  config.kind = FaultKind::kTransientFlip;
  config.engine = CampaignEngine::kReference;
  const CampaignResult reference = RunCampaignSerial(config);
  config.engine = CampaignEngine::kDifferential;
  const CampaignResult differential = RunCampaignSerial(config);
  config.engine = CampaignEngine::kBatch;
  const CampaignResult batch = RunCampaignSerial(config);
  ExpectSameRecords(reference, batch, /*normalize_cost=*/true);
  ExpectSameRecords(differential, batch);
}

// Restores the process-wide SIMD mode so the dispatch choice cannot leak
// into other fixtures.
class SimdModeMatrixTest : public ::testing::Test {
 protected:
  void TearDown() override { SetSimdMode(SimdMode::kAuto); }

  static std::string Csv(const CampaignResult& result) {
    std::ostringstream out;
    WriteCampaignCsv(result, out);
    return out.str();
  }
};

// The SIMD dispatch axis of the equivalence matrix: every grouped rung ×
// {scalar, avx2} must produce the byte-identical CSV the differential
// engine produces. batch_lanes = 13 forces partial final batches AND a
// partial final 8-wide SIMD group inside every batch (13 = 8 + 5), so the
// masked tail path of the vector kernel is on the hook too.
TEST_F(SimdModeMatrixTest, EnginesAgreeAcrossSimdModes) {
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary}) {
    for (const FaultKind kind :
         {FaultKind::kStuckAt, FaultKind::kTransientFlip}) {
      auto config = BaseConfig();
      config.dataflow = dataflow;
      config.kind = kind;
      config.batch_lanes = 13;
      SCOPED_TRACE(config.ToString());

      SetSimdMode(SimdMode::kScalar);
      config.engine = CampaignEngine::kDifferential;
      const std::string want = Csv(RunCampaignSerial(config));

      for (const SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
        if (mode == SimdMode::kAvx2 && !CpuSupportsAvx2()) continue;
        SetSimdMode(mode);
        for (const CampaignEngine engine :
             {CampaignEngine::kBatch, CampaignEngine::kPredicted}) {
          config.engine = engine;
          EXPECT_EQ(want, Csv(RunCampaignSerial(config)))
              << ToString(engine) << " under --simd " << ToString(mode);
        }
      }
    }
  }
}

}  // namespace
}  // namespace saffire
