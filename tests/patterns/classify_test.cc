#include "patterns/classify.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace saffire {
namespace {

// Builds a corruption map directly from coordinates.
CorruptionMap MakeMap(std::int64_t rows, std::int64_t cols,
                      std::vector<MatrixCoord> coords) {
  CorruptionMap map;
  map.rows = rows;
  map.cols = cols;
  map.corrupted = std::move(coords);
  map.max_abs_delta = map.corrupted.empty() ? 0 : 256;
  map.min_abs_delta = map.max_abs_delta;
  return map;
}

ClassifyContext GemmContext(std::int64_t rows, std::int64_t cols,
                            std::int64_t tile_rows, std::int64_t tile_cols) {
  ClassifyContext context;
  context.op = OpType::kGemm;
  context.rows = rows;
  context.cols = cols;
  context.tile_rows = tile_rows;
  context.tile_cols = tile_cols;
  return context;
}

std::vector<MatrixCoord> FullColumn(std::int64_t rows, std::int64_t col) {
  std::vector<MatrixCoord> coords;
  for (std::int64_t r = 0; r < rows; ++r) coords.push_back({r, col});
  return coords;
}

TEST(ClassifyTest, EmptyIsMasked) {
  EXPECT_EQ(Classify(MakeMap(16, 16, {}), GemmContext(16, 16, 16, 16)),
            PatternClass::kMasked);
}

TEST(ClassifyTest, SingleElement) {
  EXPECT_EQ(
      Classify(MakeMap(16, 16, {{4, 9}}), GemmContext(16, 16, 16, 16)),
      PatternClass::kSingleElement);
}

TEST(ClassifyTest, SingleElementMultiTile) {
  // The Fig. 3d shape: the same (4, 9) offset in each 16×16 tile of a
  // 32×32 output.
  const auto map =
      MakeMap(32, 32, {{4, 9}, {4, 25}, {20, 9}, {20, 25}});
  EXPECT_EQ(Classify(map, GemmContext(32, 32, 16, 16)),
            PatternClass::kSingleElementMultiTile);
}

TEST(ClassifyTest, ElementsAtDifferentOffsetsAreOther) {
  const auto map = MakeMap(32, 32, {{4, 9}, {5, 25}});
  EXPECT_EQ(Classify(map, GemmContext(32, 32, 16, 16)),
            PatternClass::kOther);
}

TEST(ClassifyTest, TwoElementsSameTileAreOther) {
  const auto map = MakeMap(16, 16, {{4, 9}, {5, 9}});
  EXPECT_EQ(Classify(map, GemmContext(16, 16, 16, 16)),
            PatternClass::kOther);
}

TEST(ClassifyTest, SingleColumn) {
  EXPECT_EQ(Classify(MakeMap(16, 16, FullColumn(16, 9)),
                     GemmContext(16, 16, 16, 16)),
            PatternClass::kSingleColumn);
}

TEST(ClassifyTest, SingleColumnMultiTile) {
  // Fig. 3c: the same column offset fully corrupted in every column-tile.
  std::vector<MatrixCoord> coords;
  for (std::int64_t c : {9ll, 25ll}) {
    const auto col = FullColumn(32, c);
    coords.insert(coords.end(), col.begin(), col.end());
  }
  std::sort(coords.begin(), coords.end());
  EXPECT_EQ(Classify(MakeMap(32, 32, coords), GemmContext(32, 32, 16, 16)),
            PatternClass::kSingleColumnMultiTile);
}

TEST(ClassifyTest, ColumnSpanningVerticalTilesIsMultiTile) {
  // One full column of a 32-row output tiled 16×16: the corruption crosses
  // two tiles vertically.
  EXPECT_EQ(Classify(MakeMap(32, 16, FullColumn(32, 3)),
                     GemmContext(32, 16, 16, 16)),
            PatternClass::kSingleColumnMultiTile);
}

TEST(ClassifyTest, PartialColumnIsOther) {
  auto coords = FullColumn(16, 9);
  coords.pop_back();
  EXPECT_EQ(Classify(MakeMap(16, 16, coords), GemmContext(16, 16, 16, 16)),
            PatternClass::kOther);
}

TEST(ClassifyTest, ColumnsAtDifferentOffsetsAreOther) {
  std::vector<MatrixCoord> coords = FullColumn(32, 9);
  const auto second = FullColumn(32, 26);  // offset 10, not 9
  coords.insert(coords.end(), second.begin(), second.end());
  std::sort(coords.begin(), coords.end());
  EXPECT_EQ(Classify(MakeMap(32, 32, coords), GemmContext(32, 32, 16, 16)),
            PatternClass::kOther);
}

TEST(ClassifyTest, SingleRow) {
  std::vector<MatrixCoord> coords;
  for (std::int64_t c = 0; c < 16; ++c) coords.push_back({5, c});
  EXPECT_EQ(Classify(MakeMap(16, 16, coords), GemmContext(16, 16, 16, 16)),
            PatternClass::kSingleRow);
}

TEST(ClassifyTest, SingleRowMultiTile) {
  std::vector<MatrixCoord> coords;
  for (std::int64_t r : {5ll, 21ll}) {
    for (std::int64_t c = 0; c < 32; ++c) coords.push_back({r, c});
  }
  std::sort(coords.begin(), coords.end());
  EXPECT_EQ(Classify(MakeMap(32, 32, coords), GemmContext(32, 32, 16, 16)),
            PatternClass::kSingleRowMultiTile);
}

TEST(ClassifyTest, FullMatrixIsOther) {
  std::vector<MatrixCoord> coords;
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) coords.push_back({r, c});
  }
  // Both "all rows full" and "all columns full" hold, but at multiple
  // offsets → other.
  EXPECT_EQ(Classify(MakeMap(4, 4, coords), GemmContext(4, 4, 4, 4)),
            PatternClass::kOther);
}

// --- Convolution contexts --------------------------------------------------

ClassifyContext ConvContext(ConvLowering lowering) {
  ClassifyContext context;
  context.op = OpType::kConv;
  context.lowering = lowering;
  context.conv.in_channels = 3;
  context.conv.height = 16;
  context.conv.width = 16;
  context.conv.out_channels = 8;
  context.conv.kernel_h = 3;
  context.conv.kernel_w = 3;
  if (lowering == ConvLowering::kShiftGemm) {
    context.rows = 14 * 16;  // N·P·W
    context.cols = 24;       // S·K
  } else {
    context.rows = 14 * 14;  // NPQ
    context.cols = 8;        // K
  }
  context.tile_rows = 1024;
  context.tile_cols = 16;
  return context;
}

TEST(ClassifyTest, ConvSingleChannelShiftGemm) {
  const auto context = ConvContext(ConvLowering::kShiftGemm);
  // Columns 3, 4, 5 all belong to channel 1 (k·S + s, S = 3).
  std::vector<MatrixCoord> coords = FullColumn(context.rows, 4);
  EXPECT_EQ(Classify(MakeMap(context.rows, context.cols, coords), context),
            PatternClass::kSingleChannel);
}

TEST(ClassifyTest, ConvMultiChannelShiftGemm) {
  const auto context = ConvContext(ConvLowering::kShiftGemm);
  // Columns 2 and 18: channels 0 and 6 — the Fig. 3f mechanism.
  auto coords = FullColumn(context.rows, 2);
  const auto second = FullColumn(context.rows, 18);
  coords.insert(coords.end(), second.begin(), second.end());
  std::sort(coords.begin(), coords.end());
  EXPECT_EQ(Classify(MakeMap(context.rows, context.cols, coords), context),
            PatternClass::kMultiChannel);
}

TEST(ClassifyTest, ConvTwoColumnsSameChannelIsSingleChannel) {
  const auto context = ConvContext(ConvLowering::kShiftGemm);
  auto coords = FullColumn(context.rows, 3);
  const auto second = FullColumn(context.rows, 5);  // both channel 1
  coords.insert(coords.end(), second.begin(), second.end());
  std::sort(coords.begin(), coords.end());
  EXPECT_EQ(Classify(MakeMap(context.rows, context.cols, coords), context),
            PatternClass::kSingleChannel);
}

TEST(ClassifyTest, ConvSingleChannelIm2Col) {
  const auto context = ConvContext(ConvLowering::kIm2Col);
  EXPECT_EQ(Classify(MakeMap(context.rows, context.cols,
                             FullColumn(context.rows, 5)),
                     context),
            PatternClass::kSingleChannel);
}

TEST(ClassifyTest, ConvPartialColumnFallsThroughToGemmRules) {
  const auto context = ConvContext(ConvLowering::kIm2Col);
  // A single corrupted element in a conv output is not a channel pattern;
  // the generic rules classify it (OS-style conv faults land here).
  EXPECT_EQ(Classify(MakeMap(context.rows, context.cols, {{7, 3}}), context),
            PatternClass::kSingleElement);
}

TEST(ClassifyTest, ColumnToChannelMappings) {
  const auto shift = ConvContext(ConvLowering::kShiftGemm);
  EXPECT_EQ(ColumnToChannel(0, shift), 0);
  EXPECT_EQ(ColumnToChannel(5, shift), 1);
  EXPECT_EQ(ColumnToChannel(23, shift), 7);
  const auto im2col = ConvContext(ConvLowering::kIm2Col);
  EXPECT_EQ(ColumnToChannel(5, im2col), 5);
  EXPECT_THROW(ColumnToChannel(8, im2col), std::invalid_argument);
}

TEST(ClassifyTest, RejectsMismatchedMapAndContext) {
  EXPECT_THROW(
      Classify(MakeMap(8, 8, {}), GemmContext(16, 16, 16, 16)),
      std::invalid_argument);
  ClassifyContext uninitialized;
  EXPECT_THROW(Classify(MakeMap(8, 8, {}), uninitialized),
               std::invalid_argument);
}

TEST(MakeClassifyContextTest, FollowsDriverPlan) {
  AccelConfig accel;
  accel.max_compute_rows = 1024;
  accel.spad_rows = 2048;
  accel.acc_rows = 1024;
  const auto ws_context = MakeClassifyContext(
      Gemm112x112(), accel, Dataflow::kWeightStationary);
  EXPECT_EQ(ws_context.rows, 112);
  EXPECT_EQ(ws_context.tile_rows, 1024);  // M streams in one chunk
  EXPECT_EQ(ws_context.tile_cols, 16);
  const auto os_context = MakeClassifyContext(
      Gemm112x112(), accel, Dataflow::kOutputStationary);
  EXPECT_EQ(os_context.tile_rows, 16);
  EXPECT_EQ(os_context.tile_cols, 16);
}

TEST(PatternClassTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kNumPatternClasses; ++i) {
    names.insert(ToString(static_cast<PatternClass>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumPatternClasses));
}

}  // namespace
}  // namespace saffire
