#include "patterns/corruption.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(ExtractCorruptionTest, IdenticalTensorsYieldEmptyMap) {
  const auto golden = Int32Tensor::FromRows({{1, 2}, {3, 4}});
  const auto map = ExtractCorruption(golden, golden);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.count(), 0);
  EXPECT_EQ(map.rows, 2);
  EXPECT_EQ(map.cols, 2);
  EXPECT_EQ(map.max_abs_delta, 0);
}

TEST(ExtractCorruptionTest, FindsAllDifferences) {
  const auto golden = Int32Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  const auto faulty = Int32Tensor::FromRows({{1, 9, 3}, {4, 5, 0}});
  const auto map = ExtractCorruption(golden, faulty);
  ASSERT_EQ(map.count(), 2);
  EXPECT_EQ(map.corrupted[0], (MatrixCoord{0, 1}));
  EXPECT_EQ(map.corrupted[1], (MatrixCoord{1, 2}));
  EXPECT_EQ(map.max_abs_delta, 7);
  EXPECT_EQ(map.min_abs_delta, 6);
}

TEST(ExtractCorruptionTest, CoordsSortedRowMajor) {
  auto golden = Int32Tensor({4, 4});
  auto faulty = golden;
  faulty(3, 0) = 1;
  faulty(0, 3) = 1;
  faulty(2, 2) = 1;
  const auto map = ExtractCorruption(golden, faulty);
  ASSERT_EQ(map.count(), 3);
  EXPECT_EQ(map.corrupted[0], (MatrixCoord{0, 3}));
  EXPECT_EQ(map.corrupted[1], (MatrixCoord{2, 2}));
  EXPECT_EQ(map.corrupted[2], (MatrixCoord{3, 0}));
}

TEST(ExtractCorruptionTest, RejectsShapeMismatch) {
  EXPECT_THROW(ExtractCorruption(Int32Tensor({2, 2}), Int32Tensor({2, 3})),
               std::invalid_argument);
}

TEST(CorruptionMapTest, DistinctColsAndRows) {
  auto golden = Int32Tensor({4, 4});
  auto faulty = golden;
  faulty(0, 1) = 1;
  faulty(2, 1) = 1;
  faulty(2, 3) = 1;
  const auto map = ExtractCorruption(golden, faulty);
  EXPECT_EQ(map.DistinctCols(), (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(map.DistinctRows(), (std::vector<std::int64_t>{0, 2}));
}

TEST(CorruptionMapTest, ColumnFullyCorrupted) {
  auto golden = Int32Tensor({3, 2});
  auto faulty = golden;
  faulty(0, 0) = 1;
  faulty(1, 0) = 1;
  faulty(2, 0) = 1;
  faulty(1, 1) = 1;
  const auto map = ExtractCorruption(golden, faulty);
  EXPECT_TRUE(map.ColumnFullyCorrupted(0));
  EXPECT_FALSE(map.ColumnFullyCorrupted(1));
}

TEST(ExtractCorruptionTest, DeltaWithOverflowValues) {
  auto golden = Int32Tensor({1, 1});
  auto faulty = golden;
  golden(0, 0) = std::numeric_limits<std::int32_t>::max();
  faulty(0, 0) = std::numeric_limits<std::int32_t>::min();
  const auto map = ExtractCorruption(golden, faulty);
  EXPECT_EQ(map.max_abs_delta, (std::int64_t{1} << 32) - 1);
}

}  // namespace
}  // namespace saffire
