#include "patterns/symmetry.h"

#include <gtest/gtest.h>

#include <set>

#include "fi/runner.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

std::int64_t TotalMembers(const std::vector<SiteEquivalenceClass>& classes) {
  std::int64_t total = 0;
  for (const auto& equivalence : classes) {
    total += static_cast<std::int64_t>(equivalence.members.size());
  }
  return total;
}

TEST(SymmetryTest, WsCollapsesColumns) {
  // Under WS every PE in an array column produces the same reach: 256
  // sites → 16 classes of 16 members (one per column).
  const auto classes = PartitionFaultSites(Gemm16x16(), TestConfig(),
                                           Dataflow::kWeightStationary);
  ASSERT_EQ(classes.size(), 16u);
  EXPECT_EQ(TotalMembers(classes), 256);
  for (const auto& equivalence : classes) {
    EXPECT_EQ(equivalence.members.size(), 16u);
    // All members share the representative's column.
    for (const PeCoord member : equivalence.members) {
      EXPECT_EQ(member.col, equivalence.representative.col);
    }
    EXPECT_EQ(equivalence.prediction.pattern, PatternClass::kSingleColumn);
  }
  EXPECT_DOUBLE_EQ(SymmetryReductionFactor(Gemm16x16(), TestConfig(),
                                           Dataflow::kWeightStationary),
                   (256.0 - 16.0) / 256.0);
}

TEST(SymmetryTest, IsCollapsesColumnsIntoRows) {
  const auto classes = PartitionFaultSites(Gemm16x16(), TestConfig(),
                                           Dataflow::kInputStationary);
  EXPECT_EQ(classes.size(), 16u);
  EXPECT_EQ(TotalMembers(classes), 256);
}

TEST(SymmetryTest, OsKeepsEverySiteDistinct) {
  // Each OS site owns a different output element: no reduction.
  const auto classes = PartitionFaultSites(Gemm16x16(), TestConfig(),
                                           Dataflow::kOutputStationary);
  EXPECT_EQ(classes.size(), 256u);
  EXPECT_DOUBLE_EQ(SymmetryReductionFactor(Gemm16x16(), TestConfig(),
                                           Dataflow::kOutputStationary),
                   0.0);
}

TEST(SymmetryTest, MaskedSitesFormOneClass) {
  // Conv 3×3×3×3 under WS uses 9 of 16 array columns; the 7 unused columns
  // (7 × 16 sites) share the empty reach.
  const auto classes = PartitionFaultSites(
      Conv16Kernel3x3x3x3(), TestConfig(), Dataflow::kWeightStationary);
  ASSERT_EQ(classes.size(), 10u);  // 9 used columns + 1 masked class
  std::int64_t masked_members = 0;
  for (const auto& equivalence : classes) {
    if (equivalence.prediction.pattern == PatternClass::kMasked) {
      masked_members += static_cast<std::int64_t>(equivalence.members.size());
    }
  }
  EXPECT_EQ(masked_members, 7 * 16);
}

TEST(SymmetryTest, RepresentativesValidatedBySimulation) {
  // The point of the reduction: simulating one representative per class
  // reproduces the exhaustive campaign. Validate a few members of each WS
  // class against their representative's simulated corruption.
  const AccelConfig config = TestConfig();
  const WorkloadSpec workload = Gemm16x16();
  FiRunner runner(config);
  const auto golden =
      runner.RunGolden(workload, Dataflow::kWeightStationary);
  const auto classes =
      PartitionFaultSites(workload, config, Dataflow::kWeightStationary);
  for (std::size_t i = 0; i < classes.size(); i += 4) {
    const auto& equivalence = classes[i];
    const FaultSpec representative_fault = StuckAtAdder(
        equivalence.representative, 8, StuckPolarity::kStuckAt1);
    const auto representative_run = runner.RunFaulty(
        workload, Dataflow::kWeightStationary, {&representative_fault, 1});
    const auto representative_map =
        ExtractCorruption(golden.output, representative_run.output);
    // Last member (farthest from the representative).
    const FaultSpec member_fault = StuckAtAdder(
        equivalence.members.back(), 8, StuckPolarity::kStuckAt1);
    const auto member_run = runner.RunFaulty(
        workload, Dataflow::kWeightStationary, {&member_fault, 1});
    const auto member_map =
        ExtractCorruption(golden.output, member_run.output);
    EXPECT_EQ(member_map.corrupted, representative_map.corrupted);
  }
}

TEST(SymmetryTest, TiledOsStillDistinct) {
  const auto classes = PartitionFaultSites(Gemm112x112(), TestConfig(),
                                           Dataflow::kOutputStationary);
  EXPECT_EQ(classes.size(), 256u);
}

TEST(SymmetryTest, ClassesPartitionAllSites) {
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    const auto classes =
        PartitionFaultSites(Gemm112x112(), TestConfig(), dataflow);
    EXPECT_EQ(TotalMembers(classes), 256) << ToString(dataflow);
    std::set<std::pair<int, int>> seen;
    for (const auto& equivalence : classes) {
      for (const PeCoord member : equivalence.members) {
        EXPECT_TRUE(seen.insert({member.row, member.col}).second);
      }
    }
  }
}

TEST(SymmetryTest, ReductionFactorAcrossDataflows) {
  EXPECT_DOUBLE_EQ(SymmetryReductionFactor(Gemm16x16(), TestConfig(),
                                           Dataflow::kInputStationary),
                   (256.0 - 16.0) / 256.0);
  EXPECT_GE(SymmetryReductionFactor(Conv16Kernel3x3x3x3(), TestConfig(),
                                    Dataflow::kWeightStationary),
            (256.0 - 16.0) / 256.0);
}

// --- the record-identity overload (campaign dedup) ---------------------

FaultSpec Prototype() {
  return StuckAtAdder(/*pe=*/{0, 0}, /*bit=*/8, StuckPolarity::kStuckAt1);
}

TEST(SitePartitionTest, GroupsSameRowSitesAcrossDataflows) {
  // The dedup key is (row, normalized reach): members always share their
  // representative's row, and on the uniform GEMM each row collapses to
  // one class — for every dataflow, OS included (the raw reaches differ
  // per column, but they are congruent).
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    const auto sites = AllPeCoords(TestConfig().array);
    const auto classes = PartitionFaultSites(sites, Prototype(), Gemm16x16(),
                                             TestConfig(), dataflow);
    ASSERT_EQ(classes.size(), 16u) << ToString(dataflow);
    EXPECT_EQ(TotalMembers(classes), 256) << ToString(dataflow);
    for (const auto& equivalence : classes) {
      EXPECT_EQ(equivalence.members.size(), 16u) << ToString(dataflow);
      for (const PeCoord member : equivalence.members) {
        EXPECT_EQ(member.row, equivalence.representative.row)
            << ToString(dataflow);
      }
    }
  }
}

TEST(SitePartitionTest, NonSquareArrayGroupsByRow) {
  AccelConfig config = TestConfig();
  config.array.rows = 4;
  config.array.cols = 8;
  const auto sites = AllPeCoords(config.array);
  const auto classes = PartitionFaultSites(sites, Prototype(), Gemm16x16(),
                                           config, Dataflow::kWeightStationary);
  EXPECT_EQ(TotalMembers(classes), 32);
  std::set<std::int32_t> rows;
  for (const auto& equivalence : classes) {
    rows.insert(equivalence.representative.row);
    for (const PeCoord member : equivalence.members) {
      EXPECT_EQ(member.row, equivalence.representative.row);
    }
  }
  // Every array row contributes at least one class; classes never span rows.
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_GE(classes.size(), 4u);
}

TEST(SitePartitionTest, SingleColumnArrayHasNoReduction) {
  // W=1: one site per row, so every class is a singleton — symmetry
  // degenerates gracefully instead of merging rows.
  AccelConfig config = TestConfig();
  config.array.rows = 8;
  config.array.cols = 1;
  const auto sites = AllPeCoords(config.array);
  const auto classes = PartitionFaultSites(sites, Prototype(), Gemm16x16(),
                                           config, Dataflow::kWeightStationary);
  ASSERT_EQ(classes.size(), 8u);
  for (const auto& equivalence : classes) {
    EXPECT_EQ(equivalence.members.size(), 1u);
  }
}

TEST(SitePartitionTest, RepresentativeIsFirstInSiteOrder) {
  // A sampled campaign hands the partition its sites in campaign order;
  // each class's representative must be the earliest member in that order
  // (the campaign maps members onto already-finished experiments).
  const std::vector<PeCoord> sites = {
      {3, 5}, {7, 1}, {3, 2}, {0, 0}, {7, 9}, {3, 5}};
  const auto classes =
      PartitionFaultSites(sites, Prototype(), Gemm16x16(), TestConfig(),
                          Dataflow::kWeightStationary);
  ASSERT_GE(classes.size(), 3u);
  EXPECT_EQ(classes[0].representative, (PeCoord{3, 5}));
  EXPECT_EQ(classes[1].representative, (PeCoord{7, 1}));
  // Members keep list order; the duplicate site lands in its class twice
  // (the partition mirrors the experiment list, index for index).
  EXPECT_EQ(TotalMembers(classes), 6);
  EXPECT_EQ(classes[0].members.front(), (PeCoord{3, 5}));
  EXPECT_EQ(classes[0].members.back(), (PeCoord{3, 5}));
}

TEST(SitePartitionTest, PredictionCacheParity) {
  PredictionCache cache(Gemm16x16(), TestConfig(),
                        Dataflow::kInputStationary);
  const auto sites = AllPeCoords(TestConfig().array);
  const auto cached =
      PartitionFaultSites(sites, Prototype(), Gemm16x16(), TestConfig(),
                          Dataflow::kInputStationary, &cache);
  const auto uncached = PartitionFaultSites(
      sites, Prototype(), Gemm16x16(), TestConfig(),
      Dataflow::kInputStationary);
  EXPECT_EQ(cached, uncached);
}

}  // namespace
}  // namespace saffire
