// The parallel campaign runner must reproduce the serial result exactly.
// This file deliberately exercises the deprecated RunCampaign*
// wrappers (their contract is what is being tested/provided).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include "patterns/campaign.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-20";
  config.workload.m = config.workload.k = config.workload.n = 20;
  config.bit = 8;
  return config;
}

void ExpectIdentical(const CampaignResult& serial,
                     const CampaignResult& parallel) {
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  EXPECT_EQ(serial.golden_cycles, parallel.golden_cycles);
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const ExperimentRecord& a = serial.records[i];
    const ExperimentRecord& b = parallel.records[i];
    EXPECT_EQ(a.fault.pe, b.fault.pe) << i;
    EXPECT_EQ(a.observed, b.observed) << i;
    EXPECT_EQ(a.predicted, b.predicted) << i;
    EXPECT_EQ(a.prediction_exact, b.prediction_exact) << i;
    EXPECT_EQ(a.corrupted_count, b.corrupted_count) << i;
    EXPECT_EQ(a.max_abs_delta, b.max_abs_delta) << i;
    EXPECT_EQ(a.fault_activations, b.fault_activations) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
  }
}

TEST(ParallelCampaignTest, MatchesSerialStuckAt) {
  const auto config = BaseConfig();
  ExpectIdentical(RunCampaign(config), RunCampaignParallel(config, 4));
}

TEST(ParallelCampaignTest, MatchesSerialTransient) {
  auto config = BaseConfig();
  config.kind = FaultKind::kTransientFlip;
  ExpectIdentical(RunCampaign(config), RunCampaignParallel(config, 4));
}

TEST(ParallelCampaignTest, MatchesSerialAcrossDataflows) {
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kInputStationary}) {
    auto config = BaseConfig();
    config.dataflow = dataflow;
    ExpectIdentical(RunCampaign(config), RunCampaignParallel(config, 3));
  }
}

TEST(ParallelCampaignTest, MoreThreadsThanSitesWorks) {
  auto config = BaseConfig();
  config.max_sites = 3;
  const auto result = RunCampaignParallel(config, 16);
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(ParallelCampaignTest, RejectsBadThreadCounts) {
  EXPECT_THROW(RunCampaignParallel(BaseConfig(), 0), std::invalid_argument);
  EXPECT_THROW(RunCampaignParallel(BaseConfig(), 1000),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
