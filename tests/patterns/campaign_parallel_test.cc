// A parallel sweep must reproduce the serial result exactly, whatever
// thread count the RunOptions ask for.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-20";
  config.workload.m = config.workload.k = config.workload.n = 20;
  config.bit = 8;
  return config;
}

CampaignResult RunParallel(const CampaignConfig& config, int threads) {
  RunOptions options;
  options.max_parallelism = threads;
  CollectorSink collector;
  RunSweep(SingleCampaignPlan(config), options, collector);
  std::vector<CampaignResult> results = collector.TakeResults();
  EXPECT_EQ(results.size(), 1u);
  return std::move(results.front());
}

void ExpectIdentical(const CampaignResult& serial,
                     const CampaignResult& parallel) {
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  EXPECT_EQ(serial.golden_cycles, parallel.golden_cycles);
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const ExperimentRecord& a = serial.records[i];
    const ExperimentRecord& b = parallel.records[i];
    EXPECT_EQ(a.fault.pe, b.fault.pe) << i;
    EXPECT_EQ(a.observed, b.observed) << i;
    EXPECT_EQ(a.predicted, b.predicted) << i;
    EXPECT_EQ(a.prediction_exact, b.prediction_exact) << i;
    EXPECT_EQ(a.corrupted_count, b.corrupted_count) << i;
    EXPECT_EQ(a.max_abs_delta, b.max_abs_delta) << i;
    EXPECT_EQ(a.fault_activations, b.fault_activations) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
  }
}

TEST(ParallelCampaignTest, MatchesSerialStuckAt) {
  const auto config = BaseConfig();
  ExpectIdentical(RunCampaignSerial(config), RunParallel(config, 4));
}

TEST(ParallelCampaignTest, MatchesSerialTransient) {
  auto config = BaseConfig();
  config.kind = FaultKind::kTransientFlip;
  ExpectIdentical(RunCampaignSerial(config), RunParallel(config, 4));
}

TEST(ParallelCampaignTest, MatchesSerialAcrossDataflows) {
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kInputStationary}) {
    auto config = BaseConfig();
    config.dataflow = dataflow;
    ExpectIdentical(RunCampaignSerial(config), RunParallel(config, 3));
  }
}

TEST(ParallelCampaignTest, MoreThreadsThanSitesWorks) {
  auto config = BaseConfig();
  config.max_sites = 3;
  const auto result = RunParallel(config, 16);
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(ParallelCampaignTest, RejectsBadThreadCounts) {
  CollectorSink collector;
  RunOptions negative;
  negative.max_parallelism = -1;
  EXPECT_THROW(RunSweep(SingleCampaignPlan(BaseConfig()), negative, collector),
               std::invalid_argument);
  RunOptions huge;
  huge.max_parallelism = 1000;
  EXPECT_THROW(RunSweep(SingleCampaignPlan(BaseConfig()), huge, collector),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
