// Property test for the two-tier execution engine (systolic/array.h): the
// branch-free fast-path kernels must be bit-for-bit identical to the
// instrumented reference Step() loop — outputs, cycle counts, and pe_steps —
// across dataflows, array shapes, signal widths, and edge-input patterns.
#include "systolic/array.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "systolic/dataflow.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

ArrayConfig MakeConfig(std::int32_t rows, std::int32_t cols,
                       std::int32_t input_bits, std::int32_t acc_bits) {
  ArrayConfig config;
  config.rows = rows;
  config.cols = cols;
  config.input_bits = input_bits;
  config.acc_bits = acc_bits;
  return config;
}

// Input stimulus mixing uniform-random values with the extremes that expose
// truncation and sign-extension bugs.
std::int64_t RandomEdgeValue(Rng& rng, std::int32_t bits) {
  const std::int64_t max = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t min = -max - 1;
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return min;
    case 1:
      return max;
    case 2:
      return 0;
    case 3:
      return -1;
    default:
      return rng.UniformInt(min, max);
  }
}

// Drives two arrays of the same configuration in lockstep — one forced
// through the reference loop, one free to select the fast kernels — and
// asserts every externally visible quantity stays equal.
void RunLockstep(const ArrayConfig& config, Dataflow dataflow,
                 std::uint64_t seed, int steps) {
  SCOPED_TRACE(config.ToString() + " " + ToString(dataflow) +
               " seed=" + std::to_string(seed));
  SystolicArray reference(config);
  SystolicArray fast(config);
  reference.set_force_reference_step(true);
  ASSERT_TRUE(reference.force_reference_step());
  ASSERT_FALSE(fast.force_reference_step());

  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    if (step == 0 || rng.UniformInt(0, 19) == 0) {
      reference.Reset();
      fast.Reset();
      if (dataflow == Dataflow::kWeightStationary) {
        for (std::int32_t r = 0; r < config.rows; ++r) {
          for (std::int32_t c = 0; c < config.cols; ++c) {
            const std::int64_t w = RandomEdgeValue(rng, config.input_bits);
            reference.SetWeight({r, c}, w);
            fast.SetWeight({r, c}, w);
          }
        }
      }
    }
    for (std::int32_t r = 0; r < config.rows; ++r) {
      const std::int64_t act = RandomEdgeValue(rng, config.input_bits);
      reference.SetWestInput(r, act);
      fast.SetWestInput(r, act);
    }
    for (std::int32_t c = 0; c < config.cols; ++c) {
      // North carries acc-width psum seeds under WS, operand-width streamed
      // weights under OS; exercise the full accumulator range either way.
      const std::int64_t north = RandomEdgeValue(rng, config.acc_bits);
      reference.SetNorthInput(c, north);
      fast.SetNorthInput(c, north);
    }
    reference.Step(dataflow);
    fast.Step(dataflow);

    ASSERT_EQ(reference.cycle(), fast.cycle());
    ASSERT_EQ(reference.total_pe_steps(), fast.total_pe_steps());
    EXPECT_EQ(fast.pe_steps_skipped(), 0u);
    for (std::int32_t c = 0; c < config.cols; ++c) {
      ASSERT_EQ(reference.SouthOutput(c), fast.SouthOutput(c)) << "col " << c;
    }
    for (std::int32_t r = 0; r < config.rows; ++r) {
      for (std::int32_t c = 0; c < config.cols; ++c) {
        ASSERT_EQ(reference.accumulator({r, c}), fast.accumulator({r, c}))
            << "PE (" << r << ", " << c << ")";
        ASSERT_EQ(reference.weight({r, c}), fast.weight({r, c}))
            << "PE (" << r << ", " << c << ")";
      }
    }
  }
}

TEST(FastPathEquivalenceTest, LockstepAcrossShapesWidthsAndDataflows) {
  const std::int32_t shapes[][2] = {{1, 1}, {2, 3}, {5, 2}, {4, 4}, {8, 8}};
  const std::int32_t widths[][2] = {{8, 32}, {4, 32}, {16, 32},  // narrow
                                    {8, 20}, {4, 17}, {16, 48}}; // wide
  std::uint64_t seed = 20230801;
  for (const auto& shape : shapes) {
    for (const auto& width : widths) {
      const ArrayConfig config =
          MakeConfig(shape[0], shape[1], width[0], width[1]);
      RunLockstep(config, Dataflow::kWeightStationary, ++seed, 60);
      RunLockstep(config, Dataflow::kOutputStationary, ++seed, 60);
    }
  }
}

// The narrow (int32) kernel's adder relies on 32-bit wrap-around equalling
// the acc_bits == 32 truncation; saturate the accumulators to make sure.
TEST(FastPathEquivalenceTest, NarrowKernelWrapsLikeReference) {
  const ArrayConfig config = MakeConfig(3, 3, 16, 32);
  RunLockstep(config, Dataflow::kOutputStationary, 77, 400);
}

// Scheduler-level equivalence: whole multiplies under all three dataflows,
// including the IS lowering onto the WS datapath, on square and non-square
// operands.
TEST(FastPathEquivalenceTest, SchedulerMultipliesMatchReference) {
  const ArrayConfig config = MakeConfig(8, 8, 8, 32);
  Rng rng(99);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    for (int round = 0; round < 4; ++round) {
      const std::int64_t m = rng.UniformInt(1, 8);
      const std::int64_t k = rng.UniformInt(1, 8);
      const std::int64_t n = rng.UniformInt(1, 8);
      Int8Tensor a({m, k});
      Int8Tensor b({k, n});
      for (std::int64_t i = 0; i < a.size(); ++i) {
        a.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
      }
      for (std::int64_t i = 0; i < b.size(); ++i) {
        b.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
      }

      SystolicArray reference_array(config);
      reference_array.set_force_reference_step(true);
      SystolicArray fast_array(config);
      const Int32Tensor expected =
          MatMulSingleTile(reference_array, dataflow, a, b);
      const Int32Tensor actual = MatMulSingleTile(fast_array, dataflow, a, b);
      SCOPED_TRACE(ToString(dataflow) + " m=" + std::to_string(m) +
                   " k=" + std::to_string(k) + " n=" + std::to_string(n));
      EXPECT_EQ(actual, expected);
      EXPECT_EQ(actual, GemmRef(a, b));
      EXPECT_EQ(fast_array.cycle(), reference_array.cycle());
      EXPECT_EQ(fast_array.total_pe_steps(), reference_array.total_pe_steps());
    }
  }
}

// Hook that perturbs one PE's adder output; AppliesTo gates which columns
// the engine must route through the instrumented loop.
class OffsetHook : public FaultHook {
 public:
  explicit OffsetHook(PeCoord pe) : pe_(pe) {}

  std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                     std::int64_t) override {
    if (pe == pe_ && signal == MacSignal::kAdderOut) return value + 1;
    return value;
  }
  bool AppliesTo(PeCoord pe) const override { return pe == pe_; }

 private:
  PeCoord pe_;
};

// With a hook installed the engine runs hooked columns through the reference
// loop and the rest through the fast kernel; the mix must still match an
// all-reference run, including the hook-invocation count (5 signals per
// hooked PE per cycle, as the seed engine counted).
TEST(FastPathEquivalenceTest, HookedColumnsPartitionMatchesReference) {
  const ArrayConfig config = MakeConfig(4, 6, 8, 32);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    for (const PeCoord pe :
         {PeCoord{1, 0}, PeCoord{2, 3}, PeCoord{0, 5}}) {
      SystolicArray reference(config);
      SystolicArray mixed(config);
      reference.set_force_reference_step(true);
      OffsetHook reference_hook(pe);
      OffsetHook mixed_hook(pe);
      reference.InstallFaultHook(&reference_hook);
      mixed.InstallFaultHook(&mixed_hook);

      Rng rng(500 + static_cast<std::uint64_t>(pe.col));
      for (int step = 0; step < 40; ++step) {
        for (std::int32_t r = 0; r < config.rows; ++r) {
          const std::int64_t act = RandomEdgeValue(rng, config.input_bits);
          reference.SetWestInput(r, act);
          mixed.SetWestInput(r, act);
        }
        for (std::int32_t c = 0; c < config.cols; ++c) {
          const std::int64_t north = RandomEdgeValue(rng, config.acc_bits);
          reference.SetNorthInput(c, north);
          mixed.SetNorthInput(c, north);
        }
        reference.Step(dataflow);
        mixed.Step(dataflow);
        for (std::int32_t c = 0; c < config.cols; ++c) {
          ASSERT_EQ(reference.SouthOutput(c), mixed.SouthOutput(c));
        }
        for (std::int32_t r = 0; r < config.rows; ++r) {
          for (std::int32_t c = 0; c < config.cols; ++c) {
            ASSERT_EQ(reference.accumulator({r, c}),
                      mixed.accumulator({r, c}));
          }
        }
      }
      EXPECT_EQ(reference.hook_invocations(), mixed.hook_invocations());
      EXPECT_EQ(mixed.hook_invocations(),
                static_cast<std::uint64_t>(40) * 5u);
    }
  }
}

}  // namespace
}  // namespace saffire
