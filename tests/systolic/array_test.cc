#include "systolic/array.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bits.h"

namespace saffire {
namespace {

// Hook that forces one signal of one PE to a constant and records calls.
class ConstantHook : public FaultHook {
 public:
  ConstantHook(PeCoord pe, MacSignal signal, std::int64_t forced)
      : pe_(pe), signal_(signal), forced_(forced) {}

  std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                     std::int64_t cycle) override {
    last_cycle_ = cycle;
    ++calls_;
    if (pe == pe_ && signal == signal_) return forced_;
    return value;
  }

  bool AppliesTo(PeCoord pe) const override { return pe == pe_; }

  std::int64_t calls() const { return calls_; }
  std::int64_t last_cycle() const { return last_cycle_; }

 private:
  PeCoord pe_;
  MacSignal signal_;
  std::int64_t forced_;
  std::int64_t calls_ = 0;
  std::int64_t last_cycle_ = -1;
};

ArrayConfig SmallConfig(std::int32_t rows, std::int32_t cols) {
  ArrayConfig config;
  config.rows = rows;
  config.cols = cols;
  return config;
}

TEST(ArrayConfigTest, DefaultsMatchPaperPlatform) {
  const ArrayConfig config;
  EXPECT_EQ(config.rows, 16);
  EXPECT_EQ(config.cols, 16);
  EXPECT_EQ(config.input_bits, 8);
  EXPECT_EQ(config.acc_bits, 32);
  EXPECT_EQ(config.num_pes(), 256);
  EXPECT_EQ(config.ToString(), "16x16 INT8/ACC32");
}

TEST(ArrayConfigTest, ValidateRejectsBadConfigs) {
  ArrayConfig config;
  config.rows = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config.rows = 16;
  config.acc_bits = 8;  // must be at least 2×input_bits
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(SystolicArrayTest, SinglePeWeightStationaryMac) {
  SystolicArray array(SmallConfig(1, 1));
  array.SetWeight(PeCoord{0, 0}, 3);
  array.SetWestInput(0, 5);
  array.SetNorthInput(0, 100);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(array.SouthOutput(0), 100 + 5 * 3);
  EXPECT_EQ(array.cycle(), 1);
}

TEST(SystolicArrayTest, SinglePeOutputStationaryAccumulates) {
  SystolicArray array(SmallConfig(1, 1));
  for (int t = 0; t < 4; ++t) {
    array.SetWestInput(0, 2);
    array.SetNorthInput(0, 3);  // streamed weight
    array.Step(Dataflow::kOutputStationary);
  }
  EXPECT_EQ(array.accumulator(PeCoord{0, 0}), 4 * 2 * 3);
  // OS forwards the streamed weight south.
  EXPECT_EQ(array.SouthOutput(0), 3);
}

TEST(SystolicArrayTest, ActivationPropagatesOnePePerCycle) {
  SystolicArray array(SmallConfig(1, 3));
  array.SetWeight(PeCoord{0, 0}, 1);
  array.SetWeight(PeCoord{0, 1}, 1);
  array.SetWeight(PeCoord{0, 2}, 1);
  // Pulse a single activation into the west edge on cycle 0.
  array.SetWestInput(0, 7);
  array.Step(Dataflow::kWeightStationary);
  array.SetWestInput(0, 0);
  // The single-row array: column c's south output equals the activation
  // that reached it, so the pulse appears at column c after c+1 steps.
  EXPECT_EQ(array.SouthOutput(0), 7);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(array.SouthOutput(1), 7);
  EXPECT_EQ(array.SouthOutput(0), 0);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(array.SouthOutput(2), 7);
}

TEST(SystolicArrayTest, PartialSumFlowsDownColumn) {
  SystolicArray array(SmallConfig(3, 1));
  array.SetWeight(PeCoord{0, 0}, 1);
  array.SetWeight(PeCoord{1, 0}, 1);
  array.SetWeight(PeCoord{2, 0}, 1);
  // Feed activation 1 into every row with the proper skew so one output
  // accumulates 3; seed the psum with 10 at the right cycle.
  for (int t = 0; t < 5; ++t) {
    for (std::int32_t r = 0; r < 3; ++r) {
      array.SetWestInput(r, (t == r) ? 1 : 0);
    }
    array.SetNorthInput(0, t == 0 ? 10 : 0);
    array.Step(Dataflow::kWeightStationary);
  }
  // Output row 0 left the south edge after cycle 0 + (3−1) + 0 = 2, i.e.
  // after the third step; it stays registered until overwritten.
  // Re-run sampling: after 3 steps the value is 10 + 3·1 = 13.
  // (We stepped 5 times; the south register was last written with garbage
  // rows, so recompute via a fresh run sampling at the right step.)
  SystolicArray fresh(SmallConfig(3, 1));
  fresh.SetWeight(PeCoord{0, 0}, 1);
  fresh.SetWeight(PeCoord{1, 0}, 1);
  fresh.SetWeight(PeCoord{2, 0}, 1);
  for (int t = 0; t < 3; ++t) {
    for (std::int32_t r = 0; r < 3; ++r) {
      fresh.SetWestInput(r, (t == r) ? 1 : 0);
    }
    fresh.SetNorthInput(0, t == 0 ? 10 : 0);
    fresh.Step(Dataflow::kWeightStationary);
  }
  EXPECT_EQ(fresh.SouthOutput(0), 13);
}

TEST(SystolicArrayTest, WeightsTruncateToOperandWidth) {
  SystolicArray array(SmallConfig(1, 1));
  array.SetWeight(PeCoord{0, 0}, 130);  // wraps to −126 at 8 bits
  EXPECT_EQ(array.weight(PeCoord{0, 0}), SignExtend(130, 8));
}

TEST(SystolicArrayTest, ResetClearsStateButKeepsHookAndCycle) {
  SystolicArray array(SmallConfig(2, 2));
  ConstantHook hook(PeCoord{0, 0}, MacSignal::kAdderOut, 0);
  array.InstallFaultHook(&hook);
  array.SetWeight(PeCoord{1, 1}, 5);
  array.Step(Dataflow::kWeightStationary);
  const std::int64_t cycle_before = array.cycle();
  const std::int64_t calls_before = hook.calls();
  array.Reset();
  EXPECT_EQ(array.weight(PeCoord{1, 1}), 0);
  EXPECT_EQ(array.cycle(), cycle_before);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_GT(hook.calls(), calls_before);  // hook survived the reset
}

TEST(SystolicArrayTest, HookCalledOnlyForItsPe) {
  SystolicArray array(SmallConfig(2, 2));
  ConstantHook hook(PeCoord{1, 0}, MacSignal::kAdderOut, 42);
  array.InstallFaultHook(&hook);
  array.Step(Dataflow::kWeightStationary);
  // 5 signals per cycle on exactly one hooked PE.
  EXPECT_EQ(hook.calls(), 5);
  EXPECT_EQ(array.hook_invocations(), 5u);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(hook.calls(), 10);
}

TEST(SystolicArrayTest, ForcedAdderOutReachesSouthWire) {
  SystolicArray array(SmallConfig(1, 1));
  ConstantHook hook(PeCoord{0, 0}, MacSignal::kAdderOut, 42);
  array.InstallFaultHook(&hook);
  array.SetWeight(PeCoord{0, 0}, 1);
  array.SetWestInput(0, 1);
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(array.SouthOutput(0), 42);
}

TEST(SystolicArrayTest, ClearFaultHookStopsCalls) {
  SystolicArray array(SmallConfig(2, 2));
  ConstantHook hook(PeCoord{0, 0}, MacSignal::kAdderOut, 0);
  array.InstallFaultHook(&hook);
  array.Step(Dataflow::kWeightStationary);
  const std::int64_t calls = hook.calls();
  array.ClearFaultHook();
  array.Step(Dataflow::kWeightStationary);
  EXPECT_EQ(hook.calls(), calls);
}

TEST(SystolicArrayTest, AdvanceIdleBumpsOnlyCycle) {
  SystolicArray array(SmallConfig(2, 2));
  const auto steps = array.total_pe_steps();
  array.AdvanceIdle(16);
  EXPECT_EQ(array.cycle(), 16);
  EXPECT_EQ(array.total_pe_steps(), steps);
  EXPECT_THROW(array.AdvanceIdle(-1), std::invalid_argument);
}

TEST(SystolicArrayTest, BoundsChecking) {
  SystolicArray array(SmallConfig(2, 3));
  EXPECT_THROW(array.SetWeight(PeCoord{2, 0}, 1), std::invalid_argument);
  EXPECT_THROW(array.SetWeight(PeCoord{0, 3}, 1), std::invalid_argument);
  EXPECT_THROW(array.SetWestInput(2, 1), std::invalid_argument);
  EXPECT_THROW(array.SetNorthInput(3, 1), std::invalid_argument);
  EXPECT_THROW(array.SouthOutput(-1), std::invalid_argument);
  EXPECT_THROW(array.accumulator(PeCoord{-1, 0}), std::invalid_argument);
}

TEST(SystolicArrayTest, PeStepAccounting) {
  SystolicArray array(SmallConfig(4, 4));
  array.Step(Dataflow::kOutputStationary);
  array.Step(Dataflow::kOutputStationary);
  EXPECT_EQ(array.total_pe_steps(), 32u);
}

TEST(SystolicArrayTest, AccumulatorWraparoundAt32Bits) {
  // Drive the accumulator past INT32_MAX and confirm two's-complement
  // wraparound, as 32-bit RTL would.
  ArrayConfig config = SmallConfig(1, 1);
  SystolicArray array(config);
  // 127 × 127 = 16129 per cycle; ~133200 cycles to overflow. Instead use a
  // narrower accumulator to keep the test fast.
  config.acc_bits = 16;
  SystolicArray narrow(config);
  for (int t = 0; t < 3; ++t) {
    narrow.SetWestInput(0, 127);
    narrow.SetNorthInput(0, 127);
    narrow.Step(Dataflow::kOutputStationary);
  }
  // 3 × 16129 = 48387 wraps at 16 bits to 48387 − 65536 = −17149.
  EXPECT_EQ(narrow.accumulator(PeCoord{0, 0}), 48387 - 65536);
}

}  // namespace
}  // namespace saffire
