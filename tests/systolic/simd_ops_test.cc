// Runtime SIMD dispatch (systolic/simd_ops.h): mode parsing round-trips,
// rejection messages name the offending flag and the accepted values (the
// CLI convention), and the explicit override wins over the environment.
#include "systolic/simd_ops.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace saffire {
namespace {

// Every test leaves the process-wide mode as it found it (auto), so test
// order cannot leak into the lane-grid dispatch of other fixtures.
class SimdOpsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetSimdMode(SimdMode::kAuto); }
};

TEST_F(SimdOpsTest, ToStringRoundTripsEveryMode) {
  for (const SimdMode mode :
       {SimdMode::kAuto, SimdMode::kAvx2, SimdMode::kScalar}) {
    EXPECT_EQ(ParseSimdMode(ToString(mode)), mode) << ToString(mode);
    EXPECT_EQ(SimdModeFromString(ToString(mode)), mode);
  }
  EXPECT_EQ(ToString(SimdMode::kAuto), "auto");
  EXPECT_EQ(ToString(SimdMode::kAvx2), "avx2");
  EXPECT_EQ(ToString(SimdMode::kScalar), "scalar");
}

TEST_F(SimdOpsTest, ParseRejectsUnknownNamesListingAcceptedValues) {
  for (const char* name : {"", "AVX2", "sse", "avx512", "Auto", "none"}) {
    try {
      ParseSimdMode(name);
      FAIL() << "ParseSimdMode accepted '" << name << "'";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("auto|avx2|scalar"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST_F(SimdOpsTest, ConfigureNamesTheSourceInItsError) {
  try {
    ConfigureSimdFromString("sse", "--simd");
    FAIL() << "ConfigureSimdFromString accepted 'sse'";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--simd"), std::string::npos) << what;
    EXPECT_NE(what.find("'sse'"), std::string::npos) << what;
    EXPECT_NE(what.find("auto|avx2|scalar"), std::string::npos) << what;
  }
  try {
    ConfigureSimdFromString("fast", "SAFFIRE_SIMD");
    FAIL() << "ConfigureSimdFromString accepted 'fast'";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("SAFFIRE_SIMD"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SimdOpsTest, ScalarModeDisablesTheVectorPath) {
  SetSimdMode(SimdMode::kScalar);
  EXPECT_EQ(RequestedSimdMode(), SimdMode::kScalar);
  EXPECT_FALSE(UseAvx2());
}

TEST_F(SimdOpsTest, AutoFollowsCpuSupport) {
  SetSimdMode(SimdMode::kAuto);
  EXPECT_EQ(UseAvx2(), CpuSupportsAvx2());
}

TEST_F(SimdOpsTest, Avx2ModeRequiresCpuSupport) {
  if (CpuSupportsAvx2()) {
    SetSimdMode(SimdMode::kAvx2);
    EXPECT_EQ(RequestedSimdMode(), SimdMode::kAvx2);
    EXPECT_TRUE(UseAvx2());
  } else {
    EXPECT_THROW(SetSimdMode(SimdMode::kAvx2), std::invalid_argument);
  }
}

TEST_F(SimdOpsTest, ConfigureAppliesValidModes) {
  ConfigureSimdFromString("scalar", "--simd");
  EXPECT_FALSE(UseAvx2());
  ConfigureSimdFromString("auto", "--simd");
  EXPECT_EQ(UseAvx2(), CpuSupportsAvx2());
}

}  // namespace
}  // namespace saffire
