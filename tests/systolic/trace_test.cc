#include "systolic/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "systolic/array.h"
#include "systolic/dataflow.h"

namespace saffire {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig config;
  config.rows = 2;
  config.cols = 2;
  return config;
}

TEST(RecordingTracerTest, CapturesEverySignalEveryCycle) {
  SystolicArray array(TinyConfig());
  RecordingTracer tracer;
  array.InstallTracer(&tracer);
  array.Step(Dataflow::kWeightStationary);
  array.Step(Dataflow::kWeightStationary);
  // 4 PEs × 5 signals × 2 cycles.
  EXPECT_EQ(tracer.samples().size(), 40u);
}

TEST(RecordingTracerTest, SamplesForFiltersAndOrders) {
  SystolicArray array(TinyConfig());
  RecordingTracer tracer;
  array.InstallTracer(&tracer);
  array.SetWeight(PeCoord{0, 0}, 2);
  for (int t = 0; t < 3; ++t) {
    array.SetWestInput(0, 3);
    array.Step(Dataflow::kWeightStationary);
  }
  const auto samples =
      tracer.SamplesFor(PeCoord{0, 0}, MacSignal::kAdderOut);
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].cycle, static_cast<std::int64_t>(i));
    EXPECT_EQ(samples[i].value, 6);  // 3 × 2 every cycle, no psum seed
  }
}

TEST(RecordingTracerTest, TracerSeesFaultedValues) {
  class ForceHook : public FaultHook {
   public:
    std::int64_t Apply(PeCoord, MacSignal signal, std::int64_t value,
                       std::int64_t) override {
      return signal == MacSignal::kAdderOut ? 99 : value;
    }
    bool AppliesTo(PeCoord pe) const override {
      return pe == PeCoord{0, 0};
    }
  };
  SystolicArray array(TinyConfig());
  RecordingTracer tracer;
  ForceHook hook;
  array.InstallTracer(&tracer);
  array.InstallFaultHook(&hook);
  array.Step(Dataflow::kWeightStationary);
  const auto samples =
      tracer.SamplesFor(PeCoord{0, 0}, MacSignal::kAdderOut);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 99);
}

TEST(VcdTracerTest, EmitsWellFormedHeader) {
  std::ostringstream out;
  {
    VcdTracer tracer(out, TinyConfig());
    tracer.Finish();
  }
  const std::string vcd = out.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("pe_0_0_adder_out"), std::string::npos);
  EXPECT_NE(vcd.find("pe_1_1_mul_out"), std::string::npos);
  // 2×2 PEs × 5 signals declared.
  std::size_t vars = 0;
  for (std::size_t pos = vcd.find("$var"); pos != std::string::npos;
       pos = vcd.find("$var", pos + 1)) {
    ++vars;
  }
  EXPECT_EQ(vars, 20u);
}

TEST(VcdTracerTest, RecordsValueChangesWithTimestamps) {
  std::ostringstream out;
  SystolicArray array(TinyConfig());
  {
    VcdTracer tracer(out, TinyConfig());
    array.InstallTracer(&tracer);
    array.SetWeight(PeCoord{0, 0}, 1);
    array.SetWestInput(0, 1);
    array.Step(Dataflow::kWeightStationary);
    array.SetWestInput(0, 1);
    array.Step(Dataflow::kWeightStationary);
    array.InstallTracer(nullptr);
    tracer.Finish();
  }
  const std::string vcd = out.str();
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  // adder_out of PE(0,0) is 1 from cycle 0 onwards: a 32-bit binary '1'.
  EXPECT_NE(vcd.find("b00000000000000000000000000000001"),
            std::string::npos);
}

TEST(VcdTracerTest, SuppressesUnchangedValues) {
  std::ostringstream out;
  SystolicArray array(TinyConfig());
  VcdTracer tracer(out, TinyConfig());
  array.InstallTracer(&tracer);
  // No inputs: every signal is 0 every cycle; after the cycle-0 dump no
  // further value lines should appear.
  array.Step(Dataflow::kWeightStationary);
  const auto size_after_first = out.str().size();
  array.Step(Dataflow::kWeightStationary);
  array.Step(Dataflow::kWeightStationary);
  array.InstallTracer(nullptr);
  tracer.Finish();
  const std::string tail = out.str().substr(size_after_first);
  // Only timestamps in the tail, no 'b...' value changes.
  EXPECT_EQ(tail.find(" b"), std::string::npos);
  for (const char c : tail) {
    if (c == 'b') FAIL() << "unexpected value change: " << tail;
  }
}

}  // namespace
}  // namespace saffire
