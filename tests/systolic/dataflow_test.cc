#include "systolic/dataflow.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/bits.h"
#include "common/rng.h"
#include "systolic/timing.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  }
  return t;
}

ArrayConfig Config16() { return ArrayConfig{}; }

TEST(WeightStationaryTest, FullArrayGemmMatchesReference) {
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  Rng rng(1);
  const auto a = RandomInt8(rng, 16, 16);
  const auto b = RandomInt8(rng, 16, 16);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(OutputStationaryTest, FullArrayGemmMatchesReference) {
  SystolicArray array(Config16());
  OutputStationaryScheduler scheduler(array);
  Rng rng(2);
  const auto a = RandomInt8(rng, 16, 16);
  const auto b = RandomInt8(rng, 16, 16);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(WeightStationaryTest, AllOnesYieldsInnerDim) {
  // The paper's pattern-extraction workload.
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  const auto c = scheduler.Multiply(a, b);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.flat(i), 16);
  }
}

TEST(WeightStationaryTest, StreamsManyMoreRowsThanArray) {
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  Rng rng(3);
  const auto a = RandomInt8(rng, 200, 16);
  const auto b = RandomInt8(rng, 16, 16);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(WeightStationaryTest, PsumSeedActsAsBias) {
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  Rng rng(4);
  const auto a = RandomInt8(rng, 10, 16);
  const auto b = RandomInt8(rng, 16, 12);
  Int32Tensor seed({10, 12});
  for (std::int64_t i = 0; i < seed.size(); ++i) {
    seed.flat(i) = static_cast<std::int32_t>(rng.UniformInt(-1000, 1000));
  }
  auto expected = seed;
  GemmAccumulateRef(a, b, expected);
  EXPECT_EQ(scheduler.Multiply(a, b, &seed), expected);
}

TEST(WeightStationaryTest, RejectsOversizedOperands) {
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({4, 17}), Int8Tensor({17, 4})),
      std::invalid_argument);  // K > rows
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({4, 16}), Int8Tensor({16, 17})),
      std::invalid_argument);  // N > cols
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({4, 3}), Int8Tensor({4, 3})),
      std::invalid_argument);  // inner mismatch
}

TEST(OutputStationaryTest, RejectsOversizedOperands) {
  SystolicArray array(Config16());
  OutputStationaryScheduler scheduler(array);
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({17, 4}), Int8Tensor({4, 4})),
      std::invalid_argument);  // M > rows
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({4, 4}), Int8Tensor({4, 17})),
      std::invalid_argument);  // N > cols
}

TEST(OutputStationaryTest, DeepReductionStreams) {
  // OS streams K without bound: a 16×500 by 500×16 product.
  SystolicArray array(Config16());
  OutputStationaryScheduler scheduler(array);
  Rng rng(5);
  const auto a = RandomInt8(rng, 16, 500);
  const auto b = RandomInt8(rng, 500, 16);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(WeightStationaryTest, CycleCountMatchesAnalyticalModel) {
  SystolicArray array(Config16());
  WeightStationaryScheduler scheduler(array);
  const auto a = Int8Tensor::Full({40, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  (void)scheduler.Multiply(a, b);
  EXPECT_EQ(scheduler.last_cycles(),
            WeightStationaryTileCycles(40, array.config()));
}

TEST(OutputStationaryTest, CycleCountMatchesAnalyticalModel) {
  SystolicArray array(Config16());
  OutputStationaryScheduler scheduler(array);
  const auto a = Int8Tensor::Full({16, 37}, 1);
  const auto b = Int8Tensor::Full({37, 16}, 1);
  (void)scheduler.Multiply(a, b);
  EXPECT_EQ(scheduler.last_cycles(),
            OutputStationaryTileCycles(37, array.config()));
}

TEST(TimingTest, ClosedForms) {
  const ArrayConfig config;
  EXPECT_EQ(WeightStationaryStreamCycles(16, config), 16 + 16 + 16 - 2);
  EXPECT_EQ(WeightStationaryTileCycles(16, config), 46 + 16);
  EXPECT_EQ(OutputStationaryStreamCycles(16, config), 46);
  EXPECT_EQ(OutputStationaryTileCycles(16, config), 62);
  EXPECT_THROW(WeightStationaryStreamCycles(0, config),
               std::invalid_argument);
}

TEST(MatMulSingleTileTest, DispatchesBothDataflows) {
  SystolicArray array(Config16());
  Rng rng(6);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto expected = GemmRef(a, b);
  EXPECT_EQ(MatMulSingleTile(array, Dataflow::kWeightStationary, a, b),
            expected);
  EXPECT_EQ(MatMulSingleTile(array, Dataflow::kOutputStationary, a, b),
            expected);
}

// Equivalence sweep: both dataflows agree with the reference across
// rectangular shapes, extreme operand values, and non-square arrays.
struct DataflowCase {
  Dataflow dataflow;
  std::int32_t array_rows;
  std::int32_t array_cols;
  std::int64_t m, k, n;
};

class DataflowEquivalenceTest
    : public ::testing::TestWithParam<DataflowCase> {};

TEST_P(DataflowEquivalenceTest, MatchesReferenceGemm) {
  const DataflowCase& tc = GetParam();
  ArrayConfig config;
  config.rows = tc.array_rows;
  config.cols = tc.array_cols;
  SystolicArray array(config);
  Rng rng(static_cast<std::uint64_t>(tc.m * 100 + tc.k * 10 + tc.n));
  const auto a = RandomInt8(rng, tc.m, tc.k);
  const auto b = RandomInt8(rng, tc.k, tc.n);
  EXPECT_EQ(MatMulSingleTile(array, tc.dataflow, a, b), GemmRef(a, b));
}

std::vector<DataflowCase> EquivalenceCases() {
  std::vector<DataflowCase> cases;
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    // (m, k, n) triples; WS requires k ≤ rows and n ≤ cols, OS requires
    // m ≤ rows and n ≤ cols — all of these satisfy both.
    for (const auto& [m, k, n] :
         std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
             {1, 1, 1},
             {1, 16, 16},
             {16, 1, 16},
             {16, 16, 1},
             {7, 5, 3},
             {16, 16, 16},
             {2, 9, 13}}) {
      cases.push_back(DataflowCase{dataflow, 16, 16, m, k, n});
    }
    // Non-square arrays.
    cases.push_back(DataflowCase{dataflow, 4, 8, 4, 4, 8});
    cases.push_back(DataflowCase{dataflow, 8, 4, 3, 4, 4});
    cases.push_back(DataflowCase{dataflow, 1, 1, 1, 1, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DataflowEquivalenceTest,
                         ::testing::ValuesIn(EquivalenceCases()));

// A stuck-at fault on the adder of PE(r, c) under WS corrupts only column c
// of the output — checked here at the scheduler level (the full
// classification lives in the patterns module).
class StuckAtAdderHook : public FaultHook {
 public:
  StuckAtAdderHook(PeCoord pe, int bit, StuckPolarity polarity, int width)
      : pe_(pe), bit_(bit), polarity_(polarity), width_(width) {}

  std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                     std::int64_t /*cycle*/) override {
    if (pe == pe_ && signal == MacSignal::kAdderOut) {
      return ApplyStuckAt(value, bit_, polarity_, width_);
    }
    return value;
  }

  bool AppliesTo(PeCoord pe) const override { return pe == pe_; }

 private:
  PeCoord pe_;
  int bit_;
  StuckPolarity polarity_;
  int width_;
};

TEST(FaultyDataflowTest, WsAdderFaultCorruptsOnlyItsColumn) {
  SystolicArray array(Config16());
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  WeightStationaryScheduler scheduler(array);
  const auto golden = scheduler.Multiply(a, b);

  // With all-ones operands the partial sum leaving PE(4, 9) is 5 (0b101),
  // so bit 0 stuck at 1 would be masked; bit 1 guarantees corruption.
  StuckAtAdderHook hook(PeCoord{4, 9}, 1, StuckPolarity::kStuckAt1, 32);
  array.InstallFaultHook(&hook);
  const auto faulty = scheduler.Multiply(a, b);
  array.ClearFaultHook();

  int corrupted_cols = 0;
  for (std::int64_t c = 0; c < 16; ++c) {
    bool corrupted = false;
    for (std::int64_t r = 0; r < 16; ++r) {
      if (faulty(r, c) != golden(r, c)) corrupted = true;
    }
    if (corrupted) {
      ++corrupted_cols;
      EXPECT_EQ(c, 9);
    }
  }
  EXPECT_EQ(corrupted_cols, 1);
}

TEST(FaultyDataflowTest, OsAdderFaultCorruptsOnlyItsElement) {
  SystolicArray array(Config16());
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  OutputStationaryScheduler scheduler(array);
  const auto golden = scheduler.Multiply(a, b);

  StuckAtAdderHook hook(PeCoord{4, 9}, 0, StuckPolarity::kStuckAt1, 32);
  array.InstallFaultHook(&hook);
  const auto faulty = scheduler.Multiply(a, b);
  array.ClearFaultHook();

  int corrupted = 0;
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      if (faulty(r, c) != golden(r, c)) {
        ++corrupted;
        EXPECT_EQ(r, 4);
        EXPECT_EQ(c, 9);
      }
    }
  }
  EXPECT_EQ(corrupted, 1);
}

}  // namespace
}  // namespace saffire
