#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/bits.h"
#include "common/rng.h"
#include "systolic/dataflow.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  }
  return t;
}

TEST(InputStationaryTest, FullArrayGemmMatchesReference) {
  SystolicArray array(ArrayConfig{});
  InputStationaryScheduler scheduler(array);
  Rng rng(1);
  const auto a = RandomInt8(rng, 16, 16);
  const auto b = RandomInt8(rng, 16, 16);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(InputStationaryTest, DeepWeightStreams) {
  // IS streams the weight dimension N without bound.
  SystolicArray array(ArrayConfig{});
  InputStationaryScheduler scheduler(array);
  Rng rng(2);
  const auto a = RandomInt8(rng, 16, 16);
  const auto b = RandomInt8(rng, 16, 300);
  EXPECT_EQ(scheduler.Multiply(a, b), GemmRef(a, b));
}

TEST(InputStationaryTest, RejectsOversizedStationaryOperand) {
  SystolicArray array(ArrayConfig{});
  InputStationaryScheduler scheduler(array);
  // M maps onto array columns, K onto array rows.
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({17, 4}), Int8Tensor({4, 4})),
      std::invalid_argument);
  EXPECT_THROW(
      scheduler.Multiply(Int8Tensor({4, 17}), Int8Tensor({17, 4})),
      std::invalid_argument);
}

TEST(InputStationaryTest, StepRejectsIsMode) {
  SystolicArray array(ArrayConfig{});
  EXPECT_THROW(array.Step(Dataflow::kInputStationary),
               std::invalid_argument);
}

TEST(InputStationaryTest, CycleAccountingMatchesTransposedWs) {
  SystolicArray array(ArrayConfig{});
  InputStationaryScheduler scheduler(array);
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 40}, 1);
  (void)scheduler.Multiply(a, b);
  // The stream length is N = 40 (rows of Bᵀ).
  EXPECT_EQ(scheduler.last_cycles(), 40 + 16 + 16 - 2 + 16);
}

class IsEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IsEquivalenceTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  SystolicArray array(ArrayConfig{});
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  const auto a = RandomInt8(rng, m, k);
  const auto b = RandomInt8(rng, k, n);
  EXPECT_EQ(MatMulSingleTile(array, Dataflow::kInputStationary, a, b),
            GemmRef(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, IsEquivalenceTest,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{16, 16, 16},
                                           std::tuple{7, 5, 3},
                                           std::tuple{16, 16, 1},
                                           std::tuple{1, 16, 50},
                                           std::tuple{16, 1, 16}));

// The defining fault behaviour: a stuck-at on PE(r, c)'s adder corrupts
// output ROW c under IS.
class StuckAtAdderHook : public FaultHook {
 public:
  explicit StuckAtAdderHook(PeCoord pe) : pe_(pe) {}
  std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                     std::int64_t) override {
    if (pe == pe_ && signal == MacSignal::kAdderOut) {
      return ApplyStuckAt(value, 8, StuckPolarity::kStuckAt1, 32);
    }
    return value;
  }
  bool AppliesTo(PeCoord pe) const override { return pe == pe_; }

 private:
  PeCoord pe_;
};

TEST(InputStationaryTest, AdderFaultCorruptsOnlyItsRow) {
  SystolicArray array(ArrayConfig{});
  InputStationaryScheduler scheduler(array);
  const auto a = Int8Tensor::Full({16, 16}, 1);
  const auto b = Int8Tensor::Full({16, 16}, 1);
  const auto golden = scheduler.Multiply(a, b);

  StuckAtAdderHook hook(PeCoord{4, 9});
  array.InstallFaultHook(&hook);
  const auto faulty = scheduler.Multiply(a, b);
  array.ClearFaultHook();

  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      if (r == 9) {
        EXPECT_NE(faulty(r, c), golden(r, c)) << r << "," << c;
      } else {
        EXPECT_EQ(faulty(r, c), golden(r, c)) << r << "," << c;
      }
    }
  }
}

}  // namespace
}  // namespace saffire
