// The network resilience ladder under injected chaos: retries converge to
// the byte-identical clean records, cooperative timeouts are classified and
// survived, exhausted experiments quarantine into re-simulatable
// "network-failed" checkpoint lines (or abort when asked), flaky sinks
// propagate, and a lying self-check demotes the campaign to ground truth.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "service/chaos.h"
#include "service/network_run.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

NetworkSweepSpec ExtractionSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 4;
  spec.network.extraction_k = 8;
  spec.network.extraction_n = 8;
  spec.max_sites = 6;
  return spec;
}

NetworkRunOptions FastRetries(int max_retries) {
  NetworkRunOptions options;
  options.resilience.max_retries = max_retries;
  options.resilience.backoff_base_ms = 0;  // no sleeping in tests
  options.resilience.on_failure = OnFailure::kQuarantine;
  return options;
}

// Chaos schedules are process-global: every test clears them on exit.
class NetworkResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::Clear(); }
};

TEST_F(NetworkResilienceTest, RetriesConvergeToCleanRecords) {
  const NetworkSweepSpec spec = ExtractionSpec();
  NetworkCollectorSink clean;
  EXPECT_TRUE(RunNetworkSweep(spec, clean).ok());

  chaos::ChaosSpec chaos_spec;
  chaos_spec.experiment_throw_every = 1;  // every experiment fails once
  chaos_spec.experiment_throw_attempts = 1;
  chaos::Install(chaos_spec);
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, FastRetries(2), sink);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.retries, 6);
  EXPECT_EQ(outcome.quarantined, 0);
  ASSERT_EQ(sink.records.size(), clean.records.size());
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    EXPECT_EQ(sink.records[i], clean.records[i]) << "record " << i;
  }
}

TEST_F(NetworkResilienceTest, StallsPastTheDeadlineCountAsTimeouts) {
  const NetworkSweepSpec spec = ExtractionSpec();
  chaos::ChaosSpec chaos_spec;
  chaos_spec.stall_every = 1;  // first attempt of every experiment stalls
  chaos_spec.stall_ms = 40;
  chaos::Install(chaos_spec);
  NetworkRunOptions options = FastRetries(2);
  options.resilience.experiment_timeout_ms = 10;
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, options, sink);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.timeouts, 6);
  EXPECT_EQ(outcome.retries, 6);  // each timed-out attempt was retried
  EXPECT_EQ(sink.records.size(), 6u);
}

TEST_F(NetworkResilienceTest, ExhaustedLadderQuarantinesAndResumes) {
  const NetworkSweepSpec spec = ExtractionSpec();
  NetworkCollectorSink clean;
  RunNetworkSweep(spec, clean);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.experiment_throw_every = 3;  // experiments 0 and 3
  chaos_spec.experiment_throw_attempts = 99;  // beyond any ladder
  chaos::Install(chaos_spec);
  std::ostringstream jsonl;
  NetworkJsonlSink jsonl_sink(jsonl, /*flush_every_line=*/true);
  NetworkCollectorSink collector;
  NetworkTeeSink tee({&jsonl_sink, &collector});
  const SweepOutcome outcome = RunNetworkSweep(spec, FastRetries(1), tee);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.quarantined, 2);
  EXPECT_EQ(outcome.fallbacks, 1);  // first exhausted appfi ladder demotes
  ASSERT_EQ(collector.failures.size(), 2u);
  EXPECT_EQ(collector.failures[0].experiment_index, 0);
  EXPECT_EQ(collector.failures[1].experiment_index, 3);
  EXPECT_NE(collector.failures[0].error.find("chaos"), std::string::npos);
  EXPECT_GE(collector.failures[0].attempts, 2);
  ASSERT_EQ(collector.records.size(), 4u);
  // Surviving records match ground truth (the demoted campaign runs
  // cycle-accurate, which on extraction is rung-equivalent).
  for (const NetworkRecord& record : collector.records) {
    const NetworkRecord& expected =
        clean.records[static_cast<std::size_t>(record.experiment_index)];
    EXPECT_TRUE(RungEquivalent(record, expected))
        << "experiment " << record.experiment_index;
  }

  // The quarantine marker is sealed into the checkpoint stream but carries
  // no resumable result: the loader skips it and a chaos-free resume
  // re-simulates exactly the two failed experiments.
  EXPECT_NE(jsonl.str().find("network-failed"), std::string::npos);
  std::istringstream in(jsonl.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);
  EXPECT_EQ(checkpoint.records.size(), 4u);
  chaos::Clear();
  NetworkRunOptions options;
  options.resume = &checkpoint;
  NetworkCollectorSink resumed;
  const SweepOutcome resumed_outcome = RunNetworkSweep(spec, options, resumed);
  EXPECT_TRUE(resumed_outcome.ok());
  EXPECT_EQ(resumed_outcome.records, 6);
  ASSERT_EQ(resumed.records.size(), 6u);
  for (std::size_t i = 0; i < resumed.records.size(); ++i) {
    EXPECT_TRUE(RungEquivalent(resumed.records[i], clean.records[i]))
        << "record " << i;
  }
}

TEST_F(NetworkResilienceTest, AbortPolicyRethrowsTheFinalError) {
  const NetworkSweepSpec spec = ExtractionSpec();
  chaos::ChaosSpec chaos_spec;
  chaos_spec.experiment_throw_every = 1;
  chaos_spec.experiment_throw_attempts = 99;
  chaos::Install(chaos_spec);
  NetworkRunOptions options = FastRetries(0);
  options.resilience.on_failure = OnFailure::kAbort;
  NetworkCollectorSink sink;
  EXPECT_THROW(RunNetworkSweep(spec, options, sink), chaos::ChaosError);
  EXPECT_TRUE(sink.records.empty());
}

TEST_F(NetworkResilienceTest, FlakySinkFailurePropagates) {
  // Sink failures are delivery failures, not experiment failures: the
  // resilience ladder must not swallow them into retries or quarantine.
  const NetworkSweepSpec spec = ExtractionSpec();
  NetworkCollectorSink collector;
  chaos::NetworkFlakySink flaky(&collector, /*throw_every=*/3);
  EXPECT_THROW(RunNetworkSweep(spec, flaky), chaos::ChaosError);
  EXPECT_EQ(flaky.records_forwarded(), 2);
}

TEST_F(NetworkResilienceTest, LyingSelfCheckDemotesToGroundTruth) {
  const NetworkSweepSpec spec = ExtractionSpec();
  NetworkCollectorSink clean;
  RunNetworkSweep(spec, clean);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.selfcheck_lie_every = 1;
  chaos::Install(chaos_spec);
  NetworkRunOptions options;
  options.resilience.selfcheck_rate = 1.0;
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, options, sink);
  EXPECT_FALSE(outcome.ok());
  EXPECT_GE(outcome.selfcheck_mismatches, 1);
  EXPECT_EQ(outcome.fallbacks, 1);
  ASSERT_EQ(sink.records.size(), 6u);
  // The forced mismatch keeps the trusted record; on the bit-exact
  // extraction workload it is rung-equivalent to the clean run, so no
  // delivered data was corrupted.
  EXPECT_EQ(sink.records[0].rung, NetworkRung::kCycleAccurate);
  for (std::size_t i = 0; i < sink.records.size(); ++i) {
    EXPECT_TRUE(RungEquivalent(sink.records[i], clean.records[i]))
        << "record " << i;
  }
}

}  // namespace
}  // namespace saffire
