// RunSweep facade: the unified entry point must be a pure re-routing — the
// record stream it produces is byte-identical to a direct
// CampaignExecutor::Run and to the serial runner for every engine, and the
// RunOptions knobs (executor override, validation) behave as documented.
#include "service/run.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  spec.max_sites = 12;
  return spec;
}

// The canonical record stream as bytes: every field the CSV schema carries,
// in delivery order. Byte equality here is the facade-equivalence contract.
std::string CsvOf(const CampaignPlan& plan, const RunOptions& options) {
  std::ostringstream out;
  CsvRecordSink sink(out);
  RunSweep(plan, options, sink);
  return out.str();
}

TEST(RunSweepTest, PlanOverloadMatchesDirectExecutorRun) {
  SweepSpec spec = BaseSpec();
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);

  std::ostringstream direct_out;
  CsvRecordSink direct_sink(direct_out);
  CampaignExecutor::Shared().Run(plan, direct_sink);

  EXPECT_EQ(CsvOf(plan, RunOptions{}), direct_out.str());
  EXPECT_FALSE(direct_out.str().empty());
}

TEST(RunSweepTest, SpecOverloadMatchesPlanOverload) {
  const SweepSpec spec = BaseSpec();
  std::ostringstream spec_out;
  CsvRecordSink spec_sink(spec_out);
  RunSweep(spec, RunOptions{}, spec_sink);
  EXPECT_EQ(spec_out.str(), CsvOf(BuildCampaignPlan(spec), RunOptions{}));
}

TEST(RunSweepTest, MultiSpecOverloadConcatenatesPlans) {
  SweepSpec first = BaseSpec();
  SweepSpec second = BaseSpec();
  second.polarities = {StuckPolarity::kStuckAt0};
  const std::vector<SweepSpec> specs = {first, second};

  std::ostringstream multi_out;
  CsvRecordSink multi_sink(multi_out);
  RunSweep(specs, RunOptions{}, multi_sink);

  // Reference: each spec's plan streamed back-to-back into one sink.
  std::ostringstream sequential_out;
  CsvRecordSink sequential_sink(sequential_out);
  RunSweep(BuildCampaignPlan(first), RunOptions{}, sequential_sink);
  RunSweep(BuildCampaignPlan(second), RunOptions{}, sequential_sink);
  EXPECT_EQ(multi_out.str(), sequential_out.str());
}

TEST(RunSweepTest, MatchesSerialRunnerForEveryEngine) {
  for (const CampaignEngine engine :
       {CampaignEngine::kReference, CampaignEngine::kFull,
        CampaignEngine::kDifferential, CampaignEngine::kBatch,
        CampaignEngine::kPredicted}) {
    CampaignConfig config;
    config.accel = SmallAccel();
    config.workload.name = "gemm-20";
    config.workload.m = config.workload.k = config.workload.n = 20;
    config.max_sites = 12;
    config.engine = engine;

    RunOptions options;
    options.max_parallelism = 2;
    CollectorSink collector;
    RunSweep(SingleCampaignPlan(config), options, collector);
    const std::vector<CampaignResult> results = collector.TakeResults();
    ASSERT_EQ(results.size(), 1u) << ToString(engine);

    const CampaignResult serial = RunCampaignSerial(config);
    ASSERT_EQ(results[0].records.size(), serial.records.size())
        << ToString(engine);
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      EXPECT_EQ(results[0].records[i], serial.records[i])
          << ToString(engine) << " record " << i;
    }
  }
}

TEST(RunSweepTest, HonorsExplicitExecutorInRunOptions) {
  CampaignExecutor local(ExecutorOptions{.threads = 2});
  const ExecutorStats local_before = local.stats();
  const ExecutorStats shared_before = CampaignExecutor::Shared().stats();

  RunOptions options;
  options.executor = &local;
  CollectorSink collector;
  RunSweep(BuildCampaignPlan(BaseSpec()), options, collector);
  ASSERT_EQ(collector.TakeResults().size(), 1u);

  const ExecutorStats local_after = local.stats();
  const ExecutorStats shared_after = CampaignExecutor::Shared().stats();
  EXPECT_EQ(local_after.runs, local_before.runs + 1);
  EXPECT_EQ(local_after.campaigns_executed,
            local_before.campaigns_executed + 1);
  EXPECT_EQ(shared_after.runs, shared_before.runs);
}

TEST(RunSweepTest, ExecutorOptionsCapsAreRecordInvariant) {
  SweepSpec spec = BaseSpec();
  spec.engine = CampaignEngine::kBatch;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  const std::string baseline = CsvOf(plan, RunOptions{});

  // A tighter lane cap and a deeper lookahead change scheduling and
  // occupancy only; the canonical record stream must not move.
  CampaignExecutor capped(
      ExecutorOptions{.threads = 2, .lookahead = 3, .batch_lanes = 2});
  RunOptions options;
  options.executor = &capped;
  EXPECT_EQ(CsvOf(plan, options), baseline);
  EXPECT_GT(capped.stats().batches_run, 0);
}

TEST(RunSweepTest, InvalidSpecThrows) {
  SweepSpec spec = BaseSpec();
  spec.workloads.clear();
  CollectorSink collector;
  EXPECT_THROW(RunSweep(spec, RunOptions{}, collector),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
