// The chaos harness has to be trustworthy before it can prove anything
// about the resilience layer: specs parse exactly, schedules install and
// clear, file corruption helpers do what the checkpoint tests assume, and
// a sink failure injected mid-run surfaces as the run's error without
// wedging the shared executor.
#include "service/chaos.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "service/executor.h"
#include "service/sink.h"

namespace saffire {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    chaos::Clear();
    ::unsetenv("SAFFIRE_CHAOS");
  }
};

TEST_F(ChaosTest, ParsesSpecsAndRejectsUnknownKeys) {
  const chaos::ChaosSpec spec = chaos::ParseChaosSpec(
      "experiment_throw_every=3,experiment_throw_attempts=2,"
      "batch_fail_every=1,stall_every=4,stall_ms=50,sink_throw_every=7");
  EXPECT_EQ(spec.experiment_throw_every, 3);
  EXPECT_EQ(spec.experiment_throw_attempts, 2);
  EXPECT_EQ(spec.batch_fail_every, 1);
  EXPECT_EQ(spec.stall_every, 4);
  EXPECT_EQ(spec.stall_ms, 50);
  EXPECT_EQ(spec.sink_throw_every, 7);

  EXPECT_THROW(chaos::ParseChaosSpec("warp_core_breach=1"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ParseChaosSpec("stall_ms"), std::invalid_argument);
}

TEST_F(ChaosTest, InstallsFromTheEnvironment) {
  EXPECT_FALSE(chaos::InstallFromEnv());
  EXPECT_FALSE(chaos::Enabled());

  ::setenv("SAFFIRE_CHAOS", "experiment_throw_every=5", 1);
  EXPECT_TRUE(chaos::InstallFromEnv());
  EXPECT_TRUE(chaos::Enabled());
  EXPECT_EQ(chaos::ActiveSpec().experiment_throw_every, 5);

  chaos::Clear();
  EXPECT_FALSE(chaos::Enabled());
  EXPECT_EQ(chaos::ActiveSpec().experiment_throw_every, 0);
}

TEST_F(ChaosTest, HooksThrowOnTheirIndexSchedule) {
  chaos::ChaosSpec spec;
  spec.experiment_throw_every = 2;
  spec.experiment_throw_attempts = 1;
  spec.batch_fail_every = 3;
  chaos::Install(spec);

  EXPECT_THROW(chaos::OnExperimentAttempt(0, 0, 0), chaos::ChaosError);
  chaos::OnExperimentAttempt(0, 0, 1);  // past throw_attempts: recovers
  chaos::OnExperimentAttempt(0, 1, 0);  // off-schedule index
  EXPECT_THROW(chaos::OnBatchAttempt(0, 0), chaos::ChaosError);
  chaos::OnBatchAttempt(1, 0);

  chaos::Clear();
  chaos::OnExperimentAttempt(0, 0, 0);  // disabled: no-op
}

TEST_F(ChaosTest, FileCorruptionHelpersFlipAndTruncate) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::path(::testing::TempDir()) / "chaos_corrupt.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
  }
  chaos::FlipByteInFile(path, 3);
  chaos::TruncateFileTo(path, 6);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), std::string("012") + char('3' ^ 0x04) + "45");

  EXPECT_THROW(chaos::FlipByteInFile(path, 999), std::invalid_argument);
  EXPECT_THROW(chaos::FlipByteInFile("/no/such/file", 0),
               std::invalid_argument);
  fs::remove(path);
}

TEST_F(ChaosTest, SinkFailureSurfacesWithoutWedgingTheExecutor) {
  SweepSpec spec;
  spec.accel.array.rows = 8;
  spec.accel.array.cols = 8;
  spec.accel.max_compute_rows = 64;
  spec.accel.spad_rows = 128;
  spec.accel.acc_rows = 64;
  spec.accel.dram_bytes = 1 << 20;
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  spec.max_sites = 8;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CollectorSink inner;
  chaos::FlakySink flaky(&inner, 4);  // throws on the 4th and 8th record
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, flaky),
               chaos::ChaosError);
  EXPECT_EQ(flaky.records_forwarded(), 3);

  // The shared pool survives the poisoned run: a clean run still works.
  CollectorSink collector;
  const SweepOutcome outcome = CampaignExecutor::Shared().Run(plan, collector);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.records, plan.total_experiments());
  EXPECT_EQ(collector.results().at(0).records.size(), 8u);
}

}  // namespace
}  // namespace saffire
