// Checkpoint/resume: a JSONL stream written by JsonlRecordSink must load
// back, survive truncation of its final line, reject foreign plans, and —
// the core property — make a resumed run reproduce the uninterrupted one
// without re-simulating what is already on disk.
#include "service/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "service/executor.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  return spec;
}

// Runs the plan through a JSONL sink and returns the stream contents.
std::string RunToJsonl(const CampaignPlan& plan,
                       const RunOptions& options = {}) {
  std::ostringstream out;
  JsonlRecordSink sink(out);
  CampaignExecutor::Shared().Run(plan, sink, options);
  return out.str();
}

void ExpectIdentical(const CampaignResult& expected,
                     const CampaignResult& actual) {
  EXPECT_EQ(expected.golden_cycles, actual.golden_cycles);
  EXPECT_EQ(expected.golden_pe_steps, actual.golden_pe_steps);
  ASSERT_EQ(expected.records.size(), actual.records.size());
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    EXPECT_EQ(expected.records[i], actual.records[i]) << "record " << i;
  }
}

TEST(CheckpointTest, JsonlRoundTripsEveryRecord) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 6;
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);
  const std::string jsonl = RunToJsonl(plan);

  std::istringstream in(jsonl);
  const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in);
  ValidateCheckpoint(checkpoint, plan);
  ASSERT_EQ(checkpoint.campaigns.size(), 2u);
  EXPECT_EQ(checkpoint.TotalRecords(), plan.total_experiments());
  for (const auto& [index, campaign] : checkpoint.campaigns) {
    EXPECT_TRUE(campaign.Complete()) << "campaign " << index;
  }

  // Replaying the checkpoint reproduces the records with zero simulation.
  CampaignExecutor& executor = CampaignExecutor::Shared();
  const ExecutorStats before = executor.stats();
  CollectorSink collector;
  RunOptions options;
  options.checkpoint = &checkpoint;
  executor.Run(plan, collector, options);
  const ExecutorStats after = executor.stats();
  EXPECT_EQ(after.experiments_run, before.experiments_run);
  EXPECT_EQ(after.campaigns_replayed - before.campaigns_replayed, 2);
  EXPECT_EQ(after.experiments_replayed - before.experiments_replayed,
            plan.total_experiments());

  CollectorSink fresh;
  executor.Run(plan, fresh);
  ASSERT_EQ(collector.results().size(), fresh.results().size());
  for (std::size_t c = 0; c < fresh.results().size(); ++c) {
    ExpectIdentical(fresh.results()[c], collector.results()[c]);
  }
}

TEST(CheckpointTest, TruncatedFinalLineResumesToIdenticalRun) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 8;
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);
  const std::string jsonl = RunToJsonl(plan);

  // Kill the run mid-write: drop the tail, leaving a half-written line.
  const std::size_t cut = jsonl.size() * 2 / 3;
  const std::string truncated = jsonl.substr(0, cut);

  std::istringstream in(truncated);
  const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in);
  ValidateCheckpoint(checkpoint, plan);
  EXPECT_LT(checkpoint.TotalRecords(), plan.total_experiments());

  CollectorSink resumed;
  RunOptions options;
  options.checkpoint = &checkpoint;
  CampaignExecutor::Shared().Run(plan, resumed, options);

  CollectorSink uninterrupted;
  CampaignExecutor::Shared().Run(plan, uninterrupted);
  ASSERT_EQ(resumed.results().size(), uninterrupted.results().size());
  for (std::size_t c = 0; c < resumed.results().size(); ++c) {
    ExpectIdentical(uninterrupted.results()[c], resumed.results()[c]);
  }
}

TEST(CheckpointTest, ShardJsonlsMergeIntoTheFullSweep) {
  SweepSpec spec = BaseSpec();
  spec.bits = {8, 31};
  spec.shards = 2;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  // Two independent shard runs, as two processes would produce them.
  SweepCheckpoint merged;
  for (int shard = 0; shard < 2; ++shard) {
    RunOptions options;
    options.only_shard = shard;
    std::istringstream in(RunToJsonl(plan, options));
    merged.MergeFrom(LoadSweepCheckpoint(in));
  }
  ValidateCheckpoint(merged, plan);
  EXPECT_EQ(merged.TotalRecords(), plan.total_experiments());

  // The merged checkpoint replays the full sweep without any simulation.
  CampaignExecutor& executor = CampaignExecutor::Shared();
  const ExecutorStats before = executor.stats();
  CollectorSink collector;
  RunOptions options;
  options.checkpoint = &merged;
  executor.Run(plan, collector, options);
  EXPECT_EQ(executor.stats().experiments_run, before.experiments_run);

  CollectorSink fresh;
  executor.Run(plan, fresh);
  for (std::size_t c = 0; c < fresh.results().size(); ++c) {
    ExpectIdentical(fresh.results()[c], collector.results()[c]);
  }
}

TEST(CheckpointTest, RejectsCheckpointFromDifferentPlan) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 4;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  std::istringstream in(RunToJsonl(plan));
  const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in);

  SweepSpec other = BaseSpec();
  other.max_sites = 4;
  other.seed = 77;  // different sampling -> different sites -> different key
  EXPECT_THROW(ValidateCheckpoint(checkpoint, BuildCampaignPlan(other)),
               std::invalid_argument);
}

TEST(CheckpointTest, DropsMalformedInteriorLineAndCounts) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 3;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  std::string jsonl = RunToJsonl(plan);
  // Corrupt the first line (the "sweep" header, which carries no resumable
  // state). The loader must drop exactly that line, count it, and keep
  // every record — a damaged line costs its own content, never the file.
  jsonl.front() = '#';
  std::istringstream in(jsonl);
  CheckpointLoadStats stats;
  const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in, &stats);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(stats.records, plan.total_experiments());
  ValidateCheckpoint(checkpoint, plan);
  EXPECT_EQ(checkpoint.TotalRecords(), plan.total_experiments());
}

TEST(CheckpointTest, CrcSealCatchesBitFlippedRecordLine) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 4;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  std::string jsonl = RunToJsonl(plan);

  // Tamper with a digit inside a record line. The line stays valid JSON —
  // without the CRC seal this would resume from a poisoned record.
  const std::size_t rec = jsonl.find("\"type\":\"record\"");
  ASSERT_NE(rec, std::string::npos);
  std::size_t digit = jsonl.find("\"cycles\":", rec);
  ASSERT_NE(digit, std::string::npos);
  digit += 9;  // first digit of the value
  ASSERT_TRUE(jsonl[digit] >= '0' && jsonl[digit] <= '9');
  jsonl[digit] = jsonl[digit] == '1' ? '2' : '1';

  std::istringstream in(jsonl);
  CheckpointLoadStats stats;
  const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in, &stats);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(checkpoint.TotalRecords(), plan.total_experiments() - 1);
  ValidateCheckpoint(checkpoint, plan);

  // Resuming re-simulates only the dropped record and reproduces the
  // uninterrupted sweep exactly.
  CollectorSink resumed;
  RunOptions options;
  options.checkpoint = &checkpoint;
  CampaignExecutor::Shared().Run(plan, resumed, options);
  CollectorSink fresh;
  CampaignExecutor::Shared().Run(plan, fresh);
  ASSERT_EQ(resumed.results().size(), fresh.results().size());
  for (std::size_t c = 0; c < fresh.results().size(); ++c) {
    ExpectIdentical(fresh.results()[c], resumed.results()[c]);
  }
}

TEST(CheckpointTest, MergeRejectsConflictingRecords) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 3;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  std::istringstream in_a(RunToJsonl(plan));
  SweepCheckpoint a = LoadSweepCheckpoint(in_a);
  std::istringstream in_b(RunToJsonl(plan));
  SweepCheckpoint b = LoadSweepCheckpoint(in_b);

  // Identical duplicates merge fine.
  SweepCheckpoint merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.TotalRecords(), a.TotalRecords());

  // A tampered record must be caught.
  b.campaigns.at(0).records.at(0).corrupted_count += 1;
  EXPECT_THROW(a.MergeFrom(b), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
