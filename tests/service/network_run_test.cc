// RunNetworkSweep end-to-end: rung equivalence on the extraction network,
// selfcheck cross-validation, network-level outcome fields, ABFT coverage,
// checkpoint resume, and cooperative stop.
#include "service/network_run.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

// One-tile extraction workload: the configuration where the appfi rung is
// provably bit-exact against the simulator.
NetworkSweepSpec ExtractionSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 4;
  spec.network.extraction_k = 8;
  spec.network.extraction_n = 8;
  spec.max_sites = 6;
  return spec;
}

NetworkSweepSpec MlpSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.batch = 8;
  spec.network.hidden = 8;
  spec.network.train_samples = 60;
  spec.network.train_epochs = 10;
  spec.network.train_target = 0.8;
  spec.max_sites = 3;
  return spec;
}

TEST(RunNetworkSweepTest, ExtractionRungsAreEquivalent) {
  NetworkSweepSpec spec = ExtractionSpec();
  NetworkCollectorSink appfi;
  spec.rung = NetworkRung::kAppFi;
  const SweepOutcome appfi_outcome = RunNetworkSweep(spec, appfi);
  NetworkCollectorSink cycle;
  spec.rung = NetworkRung::kCycleAccurate;
  const SweepOutcome cycle_outcome = RunNetworkSweep(spec, cycle);

  EXPECT_TRUE(appfi_outcome.ok());
  EXPECT_TRUE(cycle_outcome.ok());
  ASSERT_EQ(appfi.records.size(), 6u);
  ASSERT_EQ(cycle.records.size(), appfi.records.size());
  for (std::size_t i = 0; i < appfi.records.size(); ++i) {
    EXPECT_EQ(appfi.records[i].rung, NetworkRung::kAppFi);
    EXPECT_EQ(cycle.records[i].rung, NetworkRung::kCycleAccurate);
    EXPECT_TRUE(RungEquivalent(appfi.records[i], cycle.records[i]))
        << "experiment " << i;
  }
  // A stuck-at-1 on a high adder bit corrupts the reached column: the
  // extraction network reports it as SDC with a non-masked pattern.
  for (const NetworkRecord& record : appfi.records) {
    EXPECT_TRUE(record.sdc);
    EXPECT_EQ(record.pattern, PatternClass::kSingleColumn);
    EXPECT_EQ(record.batch, 4);
    EXPECT_EQ(record.correct_golden, -1);  // extraction has no labels
    EXPECT_EQ(record.correct_faulty, -1);
  }
}

TEST(RunNetworkSweepTest, FullSelfcheckFindsNoMismatchOnExtraction) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.rung = NetworkRung::kAppFi;
  NetworkRunOptions options;
  options.resilience.selfcheck_rate = 1.0;
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, options, sink);
  EXPECT_EQ(outcome.records, 6);
  EXPECT_EQ(outcome.selfchecks, 6);
  EXPECT_EQ(outcome.selfcheck_mismatches, 0);
  EXPECT_EQ(outcome.fallbacks, 0);
  EXPECT_TRUE(outcome.ok());
}

TEST(RunNetworkSweepTest, MlpRecordsCarryNetworkOutcomes) {
  NetworkSweepSpec spec = MlpSpec();
  spec.rung = NetworkRung::kCycleAccurate;
  spec.bits = {24};  // high accumulator bit: visible logit damage
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, sink);
  EXPECT_TRUE(outcome.ok());
  ASSERT_EQ(sink.records.size(), 3u);
  bool any_sdc = false;
  for (const NetworkRecord& record : sink.records) {
    EXPECT_EQ(record.batch, 8);
    EXPECT_GE(record.correct_golden, 0);
    EXPECT_LE(record.correct_golden, 8);
    EXPECT_GE(record.correct_faulty, 0);
    // Flipped predictions require a logit deviation.
    if (record.top1_flips > 0) {
      EXPECT_TRUE(record.sdc);
    }
    if (!record.sdc) {
      EXPECT_EQ(record.top1_flips, 0);
      EXPECT_EQ(record.correct_faulty, record.correct_golden);
    }
    any_sdc = any_sdc || record.sdc;
  }
  EXPECT_TRUE(any_sdc);
}

TEST(RunNetworkSweepTest, AbftCorrectsSingleColumnFaultsEndToEnd) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.abft = true;
  for (const NetworkRung rung :
       {NetworkRung::kAppFi, NetworkRung::kCycleAccurate}) {
    spec.rung = rung;
    NetworkCollectorSink sink;
    const SweepOutcome outcome = RunNetworkSweep(spec, sink);
    EXPECT_TRUE(outcome.ok());
    ASSERT_EQ(sink.records.size(), 6u);
    for (const NetworkRecord& record : sink.records) {
      EXPECT_TRUE(record.abft_on);
      // The corruption is still classified (pre-mitigation view)...
      EXPECT_EQ(record.pattern, PatternClass::kSingleColumn);
      EXPECT_EQ(record.abft_diagnosis, AbftDiagnosis::kSingleColumn);
      EXPECT_TRUE(record.abft_corrected);
      EXPECT_GT(record.abft_corrections, 0);
      // ...but the corrected tensors feed forward, so no SDC survives.
      EXPECT_FALSE(record.sdc) << ToString(rung);
      EXPECT_EQ(record.top1_flips, 0);
    }
  }
}

TEST(RunNetworkSweepTest, ResumeReplaysCheckpointedRecords) {
  NetworkSweepSpec spec = ExtractionSpec();
  std::ostringstream jsonl;
  NetworkJsonlSink jsonl_sink(jsonl);
  NetworkCollectorSink first;
  NetworkTeeSink tee({&jsonl_sink, &first});
  const SweepOutcome original = RunNetworkSweep(spec, tee);
  EXPECT_EQ(original.records, 6);

  std::istringstream in(jsonl.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);
  ASSERT_EQ(checkpoint.records.size(), 6u);

  NetworkRunOptions options;
  options.resume = &checkpoint;
  NetworkCollectorSink resumed;
  const SweepOutcome outcome = RunNetworkSweep(spec, options, resumed);
  EXPECT_EQ(outcome.records, 6);
  ASSERT_EQ(resumed.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i], first.records[i]) << "record " << i;
  }
}

TEST(RunNetworkSweepTest, ResumeRejectsForeignCheckpoint) {
  NetworkSweepSpec spec = ExtractionSpec();
  std::ostringstream jsonl;
  NetworkJsonlSink jsonl_sink(jsonl);
  RunNetworkSweep(spec, jsonl_sink);
  std::istringstream in(jsonl.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);

  NetworkSweepSpec other = ExtractionSpec();
  other.bits = {20};
  NetworkRunOptions options;
  options.resume = &checkpoint;
  NetworkCollectorSink sink;
  EXPECT_THROW(RunNetworkSweep(other, options, sink), std::invalid_argument);
}

TEST(RunNetworkSweepTest, CooperativeStopDrainsCleanly) {
  NetworkSweepSpec spec = ExtractionSpec();
  std::atomic<bool> stop{true};
  NetworkRunOptions options;
  options.stop = &stop;
  NetworkCollectorSink sink;
  const SweepOutcome outcome = RunNetworkSweep(spec, options, sink);
  EXPECT_TRUE(outcome.stopped);
  EXPECT_EQ(outcome.records, 0);
  EXPECT_TRUE(sink.records.empty());
}

}  // namespace
}  // namespace saffire
