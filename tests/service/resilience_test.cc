// The resilience layer must keep a sweep's record stream canonical and
// bit-identical while experiments fail around it: transient faults are
// retried with deterministic backoff, campaigns fall down the engine
// ladder, exhausted experiments quarantine into FailedRecords at their
// canonical positions, and every path is visible in the SweepOutcome.
#include "service/resilience.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "service/chaos.h"
#include "service/executor.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  return spec;
}

void ExpectIdentical(const CampaignResult& expected,
                     const CampaignResult& actual) {
  EXPECT_EQ(expected.golden_cycles, actual.golden_cycles);
  ASSERT_EQ(expected.records.size(), actual.records.size());
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    EXPECT_EQ(expected.records[i], actual.records[i]) << "record " << i;
  }
}

// Captures the canonical delivery order of records and failures.
class RecordingSink : public RecordSink {
 public:
  struct Event {
    std::int64_t index;
    bool failed;
  };

  void OnRecord(const CampaignBeginInfo& /*info*/,
                std::int64_t experiment_index,
                const ExperimentRecord& /*record*/) override {
    events_.push_back({experiment_index, false});
  }
  void OnExperimentFailed(const CampaignBeginInfo& /*info*/,
                          const FailedRecord& failure) override {
    events_.push_back({failure.experiment_index, true});
    failures_.push_back(failure);
  }

  const std::vector<Event>& events() const { return events_; }
  const std::vector<FailedRecord>& failures() const { return failures_; }

 private:
  std::vector<Event> events_;
  std::vector<FailedRecord> failures_;
};

// Every chaos test clears the process-wide schedule, pass or fail.
class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::Clear(); }

  // No backoff sleeps in tests.
  static ResilienceOptions FastRetries() {
    ResilienceOptions res;
    res.backoff_base_ms = 0;
    return res;
  }
};

TEST(ResiliencePureTest, FallbackLadderEndsAtFull) {
  EXPECT_EQ(FallbackEngine(CampaignEngine::kPredicted),
            CampaignEngine::kBatch);
  EXPECT_EQ(FallbackEngine(CampaignEngine::kBatch),
            CampaignEngine::kDifferential);
  EXPECT_EQ(FallbackEngine(CampaignEngine::kDifferential),
            CampaignEngine::kFull);
  EXPECT_EQ(FallbackEngine(CampaignEngine::kFull), std::nullopt);
  EXPECT_EQ(FallbackEngine(CampaignEngine::kReference), std::nullopt);
}

TEST(ResiliencePureTest, OnFailureParsesAndRoundTrips) {
  EXPECT_EQ(ParseOnFailure("quarantine"), OnFailure::kQuarantine);
  EXPECT_EQ(ParseOnFailure("abort"), OnFailure::kAbort);
  EXPECT_EQ(ToString(OnFailure::kQuarantine), "quarantine");
  EXPECT_EQ(ToString(OnFailure::kAbort), "abort");
  EXPECT_THROW(ParseOnFailure("retry-forever"), std::invalid_argument);
}

TEST(ResiliencePureTest, BackoffIsDeterministicBoundedAndDisableable) {
  ResilienceOptions res;
  res.backoff_base_ms = 2;
  res.backoff_cap_ms = 50;
  for (int attempt = 0; attempt < 24; ++attempt) {
    const std::int64_t delay = BackoffDelayMs(res, 7, 3, 11, attempt);
    EXPECT_EQ(delay, BackoffDelayMs(res, 7, 3, 11, attempt)) << "attempt "
                                                             << attempt;
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, res.backoff_cap_ms + res.backoff_base_ms);
  }
  // Exponential up to the cap: a late attempt saturates.
  EXPECT_GE(BackoffDelayMs(res, 7, 3, 11, 10), res.backoff_cap_ms);
  res.backoff_base_ms = 0;
  EXPECT_EQ(BackoffDelayMs(res, 7, 3, 11, 5), 0);
}

TEST(ResiliencePureTest, SelfCheckSamplingIsDeterministicAndUnbiased) {
  EXPECT_FALSE(SelfCheckSampled(0.0, 1, 0, 0));
  EXPECT_TRUE(SelfCheckSampled(1.0, 1, 0, 0));
  const double rate = 0.3;
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const bool sampled = SelfCheckSampled(rate, 42, 1, i);
    EXPECT_EQ(sampled, SelfCheckSampled(rate, 42, 1, i));
    hits += sampled ? 1 : 0;
  }
  const double observed = static_cast<double>(hits) / n;
  EXPECT_NEAR(observed, rate, 0.02);
}

TEST_F(ResilienceTest, RetriesRecoverTransientFaults) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 10;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CollectorSink baseline;
  CampaignExecutor::Shared().Run(plan, baseline);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.experiment_throw_every = 5;  // indices 0 and 5
  chaos_spec.experiment_throw_attempts = 2;
  chaos::Install(chaos_spec);

  CollectorSink collector;
  RunOptions options;
  options.resilience = FastRetries();
  options.resilience.max_retries = 3;
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, collector, options);

  EXPECT_EQ(outcome.retries, 4);  // two failed attempts per hit index
  EXPECT_EQ(outcome.quarantined, 0);
  EXPECT_EQ(outcome.fallbacks, 0);
  EXPECT_EQ(outcome.records, plan.total_experiments());
  EXPECT_TRUE(outcome.ok());
  ExpectIdentical(baseline.results().at(0), collector.results().at(0));
}

TEST_F(ResilienceTest, ExhaustedFaultsQuarantineAtTheLadderBottom) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 6;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.experiment_throw_every = 3;  // indices 0 and 3
  chaos_spec.experiment_throw_attempts = 99;  // never recovers
  chaos::Install(chaos_spec);

  RecordingSink sink;
  RunOptions options;
  options.max_parallelism = 1;
  options.resilience = FastRetries();
  options.resilience.max_retries = 1;
  options.resilience.on_failure = OnFailure::kQuarantine;
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, sink, options);

  EXPECT_EQ(outcome.quarantined, 2);
  EXPECT_EQ(outcome.records, 4);
  EXPECT_GE(outcome.fallbacks, 1);  // differential -> full, once
  EXPECT_FALSE(outcome.ok());

  // The frontier stays canonical: failures occupy their record's slot.
  ASSERT_EQ(sink.events().size(), 6u);
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    EXPECT_EQ(sink.events()[i].index, static_cast<std::int64_t>(i));
    EXPECT_EQ(sink.events()[i].failed, i == 0 || i == 3) << "index " << i;
  }
  for (const FailedRecord& failure : sink.failures()) {
    EXPECT_EQ(failure.engine, CampaignEngine::kFull);
    EXPECT_GE(failure.attempts, 2);
    EXPECT_FALSE(failure.error.empty());
  }

  // The same exhaustion under kAbort rethrows the final error instead.
  NullSink null;
  options.resilience.on_failure = OnFailure::kAbort;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, null, options),
               std::runtime_error);
}

TEST_F(ResilienceTest, PermanentErrorsQuarantineWithoutRetrying) {
  SweepSpec spec = BaseSpec();
  spec.bits = {200};  // out of range for every signal width
  const CampaignPlan plan = BuildCampaignPlan(spec);

  RecordingSink sink;
  RunOptions options;
  options.resilience = FastRetries();
  options.resilience.on_failure = OnFailure::kQuarantine;
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, sink, options);

  EXPECT_EQ(outcome.quarantined, plan.total_experiments());
  EXPECT_EQ(outcome.records, 0);
  EXPECT_EQ(outcome.retries, 0);  // std::invalid_argument is permanent
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(static_cast<std::int64_t>(sink.failures().size()),
            plan.total_experiments());
}

TEST_F(ResilienceTest, BatchEngineFallsBackToDifferential) {
  SweepSpec spec = BaseSpec();
  spec.engine = CampaignEngine::kBatch;
  spec.max_sites = 16;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CollectorSink baseline;
  CampaignExecutor::Shared().Run(plan, baseline);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.batch_fail_every = 1;  // every batch attempt in campaign 0
  chaos::Install(chaos_spec);

  CollectorSink collector;
  RunOptions options;
  options.resilience = FastRetries();
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, collector, options);

  // The ladder made the failure invisible: differential reproduced every
  // batch record bit-identically.
  EXPECT_GE(outcome.fallbacks, 1);
  EXPECT_EQ(outcome.quarantined, 0);
  EXPECT_EQ(outcome.records, plan.total_experiments());
  EXPECT_TRUE(outcome.ok());
  ExpectIdentical(baseline.results().at(0), collector.results().at(0));
}

TEST_F(ResilienceTest, SelfCheckCrossValidatesBatchRecords) {
  SweepSpec spec = BaseSpec();
  spec.engine = CampaignEngine::kBatch;
  spec.max_sites = 12;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CollectorSink baseline;
  CampaignExecutor::Shared().Run(plan, baseline);

  CollectorSink collector;
  RunOptions options;
  options.resilience = FastRetries();
  options.resilience.selfcheck_rate = 1.0;
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, collector, options);

  EXPECT_EQ(outcome.selfchecks, plan.total_experiments());
  EXPECT_EQ(outcome.selfcheck_mismatches, 0);
  EXPECT_EQ(outcome.fallbacks, 0);
  EXPECT_TRUE(outcome.ok());
  ExpectIdentical(baseline.results().at(0), collector.results().at(0));
}

TEST_F(ResilienceTest, TimeoutsCountAndRetrySucceeds) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 8;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  chaos::ChaosSpec chaos_spec;
  chaos_spec.stall_every = 4;  // indices 0 and 4 stall their first attempt
  chaos_spec.stall_ms = 40;
  chaos::Install(chaos_spec);

  CollectorSink collector;
  RunOptions options;
  options.max_parallelism = 1;
  options.resilience = FastRetries();
  options.resilience.experiment_timeout_ms = 5;
  const SweepOutcome outcome =
      CampaignExecutor::Shared().Run(plan, collector, options);

  EXPECT_EQ(outcome.timeouts, 2);
  EXPECT_EQ(outcome.retries, 2);
  EXPECT_EQ(outcome.quarantined, 0);
  EXPECT_EQ(outcome.records, plan.total_experiments());
  EXPECT_TRUE(outcome.ok());
}

TEST_F(ResilienceTest, RejectsInvalidResilienceOptions) {
  const CampaignPlan plan = BuildCampaignPlan(BaseSpec());
  NullSink sink;
  RunOptions options;
  options.resilience.max_retries = -1;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, sink, options),
               std::invalid_argument);
  options = {};
  options.resilience.selfcheck_rate = 1.5;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, sink, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
