// Network sweep planning: axis expansion, the spec JSON round-trip,
// campaign/sweep identity, record sinks, and checkpoint loading.
#include "service/network_sweep.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

NetworkSweepSpec BaseSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 4;
  spec.network.extraction_k = 8;
  spec.network.extraction_n = 8;
  return spec;
}

NetworkRecord SampleRecord() {
  NetworkRecord record;
  record.campaign_index = 0;
  record.experiment_index = 3;
  record.fault = StuckAtAdder(PeCoord{2, 5}, 8, StuckPolarity::kStuckAt1);
  record.rung = NetworkRung::kAppFi;
  record.pattern = PatternClass::kSingleColumn;
  record.corrupted_elements = 4;
  record.sdc = true;
  record.top1_flips = 1;
  record.batch = 4;
  return record;
}

TEST(NetworkRungTest, RoundTripsEveryName) {
  for (const NetworkRung rung :
       {NetworkRung::kAppFi, NetworkRung::kCycleAccurate}) {
    EXPECT_EQ(ParseNetworkRung(ToString(rung)), rung);
  }
}

TEST(NetworkRungTest, ParseRejectsUnknownNamesNamingTheChoices) {
  try {
    ParseNetworkRung("rtl");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("rtl"), std::string::npos) << message;
    EXPECT_NE(message.find("appfi|cycle-accurate"), std::string::npos)
        << message;
  }
}

TEST(NetworkSweepSpecTest, CampaignCountIsAxisProduct) {
  NetworkSweepSpec spec = BaseSpec();
  spec.dataflows = {Dataflow::kWeightStationary, Dataflow::kOutputStationary};
  spec.signals = {MacSignal::kAdderOut, MacSignal::kMulOut};
  spec.polarities = {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1};
  spec.bits = {4, 8, 31};
  spec.layers = {-1, 0};
  EXPECT_EQ(spec.CampaignCount(), 2u * 2 * 2 * 3 * 2);
}

TEST(NetworkSweepSpecTest, ValidateRejectsEmptyAxes) {
  for (auto clear : {+[](NetworkSweepSpec& s) { s.dataflows.clear(); },
                     +[](NetworkSweepSpec& s) { s.signals.clear(); },
                     +[](NetworkSweepSpec& s) { s.polarities.clear(); },
                     +[](NetworkSweepSpec& s) { s.bits.clear(); },
                     +[](NetworkSweepSpec& s) { s.layers.clear(); }}) {
    NetworkSweepSpec spec = BaseSpec();
    clear(spec);
    EXPECT_THROW(spec.Validate(), std::invalid_argument);
  }
}

TEST(NetworkSweepSpecTest, ValidateRejectsOutOfRangeLayerScopes) {
  NetworkSweepSpec spec = BaseSpec();
  spec.layers = {1};  // extraction has a single layer
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.layers = {-2};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.network.kind = NetworkKind::kMlp;
  spec.layers = {1};  // in range for a two-layer network
  spec.Validate();
}

// The appfi rung only covers signals the pattern predictor models; the
// forwarding signals need the cycle-accurate rung.
TEST(NetworkSweepSpecTest, ValidateRejectsForwardingSignalsOnAppFiRung) {
  NetworkSweepSpec spec = BaseSpec();
  spec.signals = {MacSignal::kActForward};
  spec.rung = NetworkRung::kAppFi;
  try {
    spec.Validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cycle-accurate"),
              std::string::npos)
        << error.what();
  }
  spec.rung = NetworkRung::kCycleAccurate;
  spec.Validate();
}

TEST(NetworkSweepSpecTest, ValidateRejectsBadPerturbBit) {
  NetworkSweepSpec spec = BaseSpec();
  spec.perturb_auto = false;
  spec.perturb.bit = 32;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(NetworkSweepSpecTest, JsonRoundTrip) {
  NetworkSweepSpec spec = BaseSpec();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.hidden = 24;
  spec.dataflows = {Dataflow::kOutputStationary};
  spec.signals = {MacSignal::kMulOut, MacSignal::kAdderOut};
  spec.polarities = {StuckPolarity::kStuckAt0};
  spec.bits = {4, 20};
  spec.layers = {0, 1};
  spec.max_sites = 6;
  spec.seed = 99;
  spec.rung = NetworkRung::kCycleAccurate;
  spec.abft = true;
  spec.perturb_auto = false;
  spec.perturb.mode = PerturbMode::kAddDelta;
  spec.perturb.bit = 5;
  spec.perturb.delta = -41;

  const NetworkSweepSpec parsed = ParseNetworkSweepSpec(spec.ToJson());
  EXPECT_EQ(parsed.ToJson(), spec.ToJson());
  EXPECT_EQ(parsed.network.kind, NetworkKind::kMlp);
  EXPECT_EQ(parsed.network.hidden, 24);
  EXPECT_EQ(parsed.rung, NetworkRung::kCycleAccurate);
  EXPECT_TRUE(parsed.abft);
  EXPECT_FALSE(parsed.perturb_auto);
  EXPECT_EQ(parsed.perturb, spec.perturb);
}

TEST(NetworkSweepSpecTest, PerturbAutoRoundTripsAsAuto) {
  NetworkSweepSpec spec = BaseSpec();
  ASSERT_TRUE(spec.perturb_auto);
  const std::string json = spec.ToJson();
  EXPECT_NE(json.find("\"perturb_mode\":\"auto\""), std::string::npos)
      << json;
  EXPECT_TRUE(ParseNetworkSweepSpec(json).perturb_auto);
}

TEST(NetworkSweepSpecTest, ParseRejectsUnknownKeys) {
  const std::string json = BaseSpec().ToJson();
  // Top-level typo.
  std::string top = json;
  top.insert(top.rfind('}'), ",\"workloads\":[]");
  EXPECT_THROW(ParseNetworkSweepSpec(top), std::invalid_argument);
  // Nested typo inside the network object.
  std::string nested = json;
  const std::string::size_type at = nested.find("\"hidden\"");
  ASSERT_NE(at, std::string::npos);
  nested.replace(at, 8, "\"hiddenn\"");
  EXPECT_THROW(ParseNetworkSweepSpec(nested), std::invalid_argument);
}

TEST(NetworkCampaignPlanTest, ExpandsWithLayerInnermost) {
  NetworkSweepSpec spec = BaseSpec();
  spec.network.kind = NetworkKind::kMlp;
  spec.bits = {8, 31};
  spec.layers = {-1, 0, 1};
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  ASSERT_EQ(plan.campaigns.size(), 6u);
  EXPECT_EQ(plan.campaigns[0].bit, 8);
  EXPECT_EQ(plan.campaigns[0].layer, -1);
  EXPECT_EQ(plan.campaigns[1].layer, 0);
  EXPECT_EQ(plan.campaigns[2].layer, 1);
  EXPECT_EQ(plan.campaigns[3].bit, 31);
  EXPECT_EQ(plan.campaigns[3].layer, -1);
  // Exhaustive over the 8×8 array, shared across campaigns.
  EXPECT_EQ(plan.experiments_per_campaign(), 64);
  EXPECT_EQ(plan.total_experiments(), 6 * 64);
}

TEST(NetworkCampaignPlanTest, MaxSitesSamplesDeterministically) {
  NetworkSweepSpec spec = BaseSpec();
  spec.max_sites = 5;
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  ASSERT_EQ(plan.sites.size(), 5u);
  const NetworkCampaignPlan replay = BuildNetworkCampaignPlan(spec);
  for (std::size_t i = 0; i < plan.sites.size(); ++i) {
    EXPECT_EQ(plan.sites[i].row, replay.sites[i].row);
    EXPECT_EQ(plan.sites[i].col, replay.sites[i].col);
  }
  spec.seed = 2;
  const NetworkCampaignPlan reseeded = BuildNetworkCampaignPlan(spec);
  bool any_differs = false;
  for (std::size_t i = 0; i < plan.sites.size(); ++i) {
    any_differs = any_differs || plan.sites[i].row != reseeded.sites[i].row ||
                  plan.sites[i].col != reseeded.sites[i].col;
  }
  EXPECT_TRUE(any_differs);
}

TEST(NetworkCampaignKeyTest, CapturesAxesButNotRung) {
  const NetworkSweepSpec spec = BaseSpec();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  NetworkSweepSpec other_rung = spec;
  other_rung.rung = NetworkRung::kCycleAccurate;
  // Rungs are contracted to produce equivalent records, so the campaign
  // identity must not depend on the rung...
  EXPECT_EQ(NetworkCampaignKey(spec, plan.campaigns[0]),
            NetworkCampaignKey(other_rung, plan.campaigns[0]));
  // ...but any fault-model axis difference must change it.
  NetworkCampaign other_axis = plan.campaigns[0];
  other_axis.bit = 30;
  EXPECT_NE(NetworkCampaignKey(spec, plan.campaigns[0]),
            NetworkCampaignKey(spec, other_axis));
  NetworkSweepSpec other_network = spec;
  other_network.network.batch = 8;
  EXPECT_NE(NetworkCampaignKey(spec, plan.campaigns[0]),
            NetworkCampaignKey(other_network, plan.campaigns[0]));
}

TEST(NetworkSweepHashTest, StableSixteenHexDigits) {
  const NetworkSweepSpec spec = BaseSpec();
  const std::string hash = NetworkSweepHash(spec);
  ASSERT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(NetworkSweepHash(spec), hash);
  NetworkSweepSpec other = spec;
  other.seed = 2;
  EXPECT_NE(NetworkSweepHash(other), hash);
}

TEST(RungEquivalentTest, IgnoresOnlyTheRungField) {
  const NetworkRecord a = SampleRecord();
  NetworkRecord b = a;
  b.rung = NetworkRung::kCycleAccurate;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(RungEquivalent(a, b));
  b.sdc = false;
  EXPECT_FALSE(RungEquivalent(a, b));
}

TEST(NetworkCsvSinkTest, EmitsHeaderAndOneRowPerRecord) {
  const NetworkSweepSpec spec = BaseSpec();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  std::ostringstream out;
  NetworkCsvSink sink(out);
  sink.OnSweepBegin(spec, plan);
  sink.OnRecord(SampleRecord());
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("campaign,experiment,dataflow,signal,polarity,bit,"
                     "layer,mitigation,pe_row,pe_col,pattern,corrupted,sdc,"
                     "top1_flips"),
            0u)
      << csv;
  // No rung column: rung-equivalent sweeps must diff byte-identically.
  EXPECT_EQ(csv.find("rung"), std::string::npos);
  EXPECT_NE(csv.find("\n0,3,WS,adder_out,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("single-column"), std::string::npos) << csv;
}

TEST(NetworkJsonlSinkTest, CheckpointRoundTrips) {
  const NetworkSweepSpec spec = BaseSpec();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  std::ostringstream out;
  NetworkJsonlSink sink(out);
  sink.OnSweepBegin(spec, plan);
  NetworkCampaignInfo info;
  info.index = 0;
  info.campaign = plan.campaigns[0];
  info.key = NetworkCampaignKey(spec, plan.campaigns[0]);
  info.experiments = plan.experiments_per_campaign();
  sink.OnCampaignBegin(info);
  const NetworkRecord record = SampleRecord();
  sink.OnRecord(record);
  sink.OnSweepEnd(SweepOutcome{});

  std::istringstream in(out.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);
  EXPECT_EQ(checkpoint.lines_dropped, 0);
  EXPECT_EQ(checkpoint.sweep_hash, NetworkSweepHash(spec));
  ASSERT_EQ(checkpoint.records.size(), 1u);
  const NetworkRecord& loaded = checkpoint.records.at({0, 3});
  EXPECT_EQ(loaded, record);
  ValidateNetworkCheckpoint(checkpoint, spec, plan);
}

TEST(NetworkJsonlSinkTest, LoaderDropsDamagedLinesWithoutThrowing) {
  const NetworkSweepSpec spec = BaseSpec();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  std::ostringstream out;
  NetworkJsonlSink sink(out);
  sink.OnSweepBegin(spec, plan);
  NetworkRecord record = SampleRecord();
  record.experiment_index = 0;
  sink.OnRecord(record);
  record.experiment_index = 1;
  sink.OnRecord(record);

  std::string text = out.str();
  // Flip one byte inside the second record line: its seal must fail.
  const std::string::size_type second =
      text.find("\"experiment\":1");
  ASSERT_NE(second, std::string::npos);
  text[second + 14] = text[second + 14] == ':' ? ';' : ':';
  // And append a truncated line, as a crash mid-write would leave.
  text += "{\"type\":\"network-record\",\"campa";

  std::istringstream in(text);
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);
  EXPECT_EQ(checkpoint.lines_dropped, 2);
  ASSERT_EQ(checkpoint.records.size(), 1u);
  EXPECT_EQ(checkpoint.records.begin()->first,
            (std::pair<std::size_t, std::int64_t>{0, 0}));
}

TEST(NetworkCheckpointTest, ValidateRejectsForeignSweeps) {
  const NetworkSweepSpec spec = BaseSpec();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  std::ostringstream out;
  NetworkJsonlSink sink(out);
  sink.OnSweepBegin(spec, plan);
  sink.OnRecord(SampleRecord());
  std::istringstream in(out.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);

  NetworkSweepSpec other = BaseSpec();
  other.bits = {20};
  const NetworkCampaignPlan other_plan = BuildNetworkCampaignPlan(other);
  EXPECT_THROW(ValidateNetworkCheckpoint(checkpoint, other, other_plan),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
