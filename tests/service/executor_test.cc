// The executor must be invisible in the results: a batch through the
// shared pool produces records bit-identical to the self-contained serial
// baseline, for every engine, dataflow, shard split, and thread count —
// while constructing strictly fewer simulators than campaigns × workers.
#include "service/executor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  return spec;
}

// Compares everything except golden_cache_hit, which depends on process
// history (what earlier tests already warmed), not on the campaign.
void ExpectIdentical(const CampaignResult& expected,
                     const CampaignResult& actual) {
  EXPECT_EQ(expected.golden_cycles, actual.golden_cycles);
  EXPECT_EQ(expected.golden_pe_steps, actual.golden_pe_steps);
  ASSERT_EQ(expected.records.size(), actual.records.size());
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    EXPECT_EQ(expected.records[i], actual.records[i]) << "record " << i;
  }
}

std::vector<CampaignResult> RunPlan(const CampaignPlan& plan,
                                    const RunOptions& options = {}) {
  CollectorSink collector;
  CampaignExecutor::Shared().Run(plan, collector, options);
  return collector.TakeResults();
}

TEST(ExecutorTest, BatchMatchesSerialBaseline) {
  SweepSpec spec = BaseSpec();
  spec.polarities = {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0};
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);
  const std::vector<CampaignResult> results = RunPlan(plan);
  ASSERT_EQ(results.size(), plan.campaigns.size());
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    ExpectIdentical(RunCampaignSerial(plan.campaigns[c]), results[c]);
  }
}

TEST(ExecutorTest, EnginesAgreeThroughTheExecutor) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 10;
  std::vector<std::vector<CampaignResult>> per_engine;
  for (const CampaignEngine engine :
       {CampaignEngine::kDifferential, CampaignEngine::kFull,
        CampaignEngine::kReference}) {
    spec.engine = engine;
    per_engine.push_back(RunPlan(BuildCampaignPlan(spec)));
  }
  for (std::size_t e = 1; e < per_engine.size(); ++e) {
    ASSERT_EQ(per_engine[e].size(), per_engine[0].size());
    for (std::size_t c = 0; c < per_engine[0].size(); ++c) {
      const CampaignResult& a = per_engine[0][c];
      const CampaignResult& b = per_engine[e][c];
      ASSERT_EQ(a.records.size(), b.records.size());
      for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].observed, b.records[i].observed);
        EXPECT_EQ(a.records[i].corrupted_count, b.records[i].corrupted_count);
        EXPECT_EQ(a.records[i].max_abs_delta, b.records[i].max_abs_delta);
      }
    }
  }
}

TEST(ExecutorTest, ResultsInvariantAcrossThreadCounts) {
  SweepSpec spec = BaseSpec();
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);
  RunOptions serial_options;
  serial_options.max_parallelism = 1;
  const std::vector<CampaignResult> serial = RunPlan(plan, serial_options);
  for (const int threads : {2, 4, 0}) {  // 0 = whole pool
    RunOptions options;
    options.max_parallelism = threads;
    const std::vector<CampaignResult> parallel = RunPlan(plan, options);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      ExpectIdentical(serial[c], parallel[c]);
    }
  }
}

TEST(ExecutorTest, ShardUnionEqualsWholeCampaign) {
  SweepSpec spec = BaseSpec();
  spec.shards = 3;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  const CampaignResult whole = RunCampaignSerial(plan.campaigns[0]);

  std::vector<ExperimentRecord> merged;
  for (int shard = 0; shard < 3; ++shard) {
    RunOptions options;
    options.only_shard = shard;
    const std::vector<CampaignResult> results = RunPlan(plan, options);
    ASSERT_EQ(results.size(), 1u);
    // Deterministic merge: shards are contiguous site ranges, so
    // concatenation in shard order reproduces the campaign.
    merged.insert(merged.end(), results[0].records.begin(),
                  results[0].records.end());
  }
  ASSERT_EQ(merged.size(), whole.records.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], whole.records[i]) << "record " << i;
  }
}

TEST(ExecutorTest, ReusesSimulatorsAcrossBatch) {
  SweepSpec spec = BaseSpec();
  spec.signals = {MacSignal::kAdderOut, MacSignal::kMulOut};
  spec.polarities = {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0};
  spec.bits = {4, 8};  // 8 campaigns, one shared accel config
  const CampaignPlan plan = BuildCampaignPlan(spec);

  CampaignExecutor& executor = CampaignExecutor::Shared();
  const ExecutorStats before = executor.stats();
  CollectorSink collector;
  executor.Run(plan, collector);
  const ExecutorStats after = executor.stats();

  const std::int64_t constructed =
      after.simulators_constructed - before.simulators_constructed;
  const std::int64_t reused = after.simulators_reused - before.simulators_reused;
  const auto campaigns = static_cast<std::int64_t>(plan.campaigns.size());
  // The acceptance bound: strictly fewer fresh simulators than the naive
  // per-campaign spawn model (campaigns × pool workers), with real reuse.
  EXPECT_LT(constructed, campaigns * executor.threads());
  EXPECT_LE(constructed, executor.threads());
  EXPECT_GT(reused, 0);
  EXPECT_EQ(after.campaigns_executed - before.campaigns_executed, campaigns);
  EXPECT_EQ(after.experiments_run - before.experiments_run,
            plan.total_experiments());
}

TEST(ExecutorTest, NestedRunFromSinkExecutesInline) {
  // A sink that launches a nested Run() from inside a pool-worker callback:
  // this must execute inline instead of deadlocking on the pool.
  class NestedSink : public RecordSink {
   public:
    explicit NestedSink(CampaignPlan inner) : inner_(std::move(inner)) {}
    void OnCampaignEnd(const CampaignBeginInfo& /*info*/) override {
      CollectorSink collector;
      CampaignExecutor::Shared().Run(inner_, collector);
      nested_records_ = collector.results().at(0).records.size();
    }
    std::size_t nested_records() const { return nested_records_; }

   private:
    CampaignPlan inner_;
    std::size_t nested_records_ = 0;
  };

  SweepSpec outer = BaseSpec();
  outer.max_sites = 2;
  SweepSpec inner = BaseSpec();
  inner.max_sites = 3;
  NestedSink sink(BuildCampaignPlan(inner));
  CampaignExecutor::Shared().Run(BuildCampaignPlan(outer), sink);
  EXPECT_EQ(sink.nested_records(), 3u);
}

TEST(ExecutorTest, RejectsInvalidOptionsAndPlans) {
  const CampaignPlan plan = BuildCampaignPlan(BaseSpec());
  NullSink sink;
  RunOptions options;
  options.max_parallelism = -1;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, sink, options),
               std::invalid_argument);
  options.max_parallelism = 1000;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, sink, options),
               std::invalid_argument);
  EXPECT_THROW(CampaignExecutor::Shared().Run(CampaignPlan{}, sink),
               std::invalid_argument);
  EXPECT_THROW(CampaignExecutor(0), std::invalid_argument);
}

TEST(ExecutorTest, PropagatesExperimentErrors) {
  SweepSpec spec = BaseSpec();
  spec.bits = {200};  // out of range for every signal width
  const CampaignPlan plan = BuildCampaignPlan(spec);
  NullSink sink;
  EXPECT_THROW(CampaignExecutor::Shared().Run(plan, sink),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
