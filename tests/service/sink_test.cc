// Streaming sinks must reproduce the batch outputs exactly: the CSV sink
// matches WriteCampaignCsv byte for byte, the histogram sink matches
// CampaignResult::Histogram(), and the collector matches RunCampaignSerial.
#include "service/sink.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.h"
#include "patterns/report.h"
#include "service/executor.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-20";
  config.workload.m = config.workload.k = config.workload.n = 20;
  return config;
}

void ExpectSameRecords(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.golden_cycles, b.golden_cycles);
  EXPECT_EQ(a.golden_pe_steps, b.golden_pe_steps);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
}

TEST(CsvRecordSinkTest, MatchesWriteCampaignCsvByteForByte) {
  const CampaignConfig config = BaseConfig();
  const CampaignResult reference = RunCampaignSerial(config);

  std::ostringstream batch;
  WriteCampaignCsv(reference, batch);

  std::ostringstream streamed;
  CsvRecordSink sink(streamed);
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), sink);

  EXPECT_EQ(streamed.str(), batch.str());
}

TEST(HistogramSinkTest, MatchesCampaignResultHistogram) {
  const CampaignConfig config = BaseConfig();
  const CampaignResult reference = RunCampaignSerial(config);

  HistogramSink sink;
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), sink);

  EXPECT_EQ(sink.total(),
            static_cast<std::int64_t>(reference.records.size()));
  EXPECT_EQ(sink.histogram(), reference.Histogram());
}

TEST(CollectorSinkTest, ReproducesSerialResult) {
  const CampaignConfig config = BaseConfig();
  CollectorSink collector;
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), collector);
  ASSERT_EQ(collector.results().size(), 1u);
  ExpectSameRecords(RunCampaignSerial(config), collector.results()[0]);
}

TEST(TeeSinkTest, FansOutToAllSinks) {
  const CampaignConfig config = BaseConfig();
  CollectorSink collector;
  HistogramSink histogram;
  std::vector<RecordSink*> fanout{&collector, &histogram};
  TeeSink tee(fanout);
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), tee);
  ASSERT_EQ(collector.results().size(), 1u);
  EXPECT_EQ(histogram.histogram(), collector.results()[0].Histogram());
}

TEST(TeeSinkTest, RejectsNullSinks) {
  EXPECT_THROW(TeeSink(std::vector<RecordSink*>{nullptr}),
               std::invalid_argument);
}

TEST(JsonlRecordSinkTest, EmitsOneWellFormedObjectPerLine) {
  CampaignConfig config = BaseConfig();
  config.max_sites = 6;
  std::ostringstream out;
  JsonlRecordSink sink(out);
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), sink);

  std::istringstream lines(out.str());
  std::string line;
  int records = 0;
  int campaigns = 0;
  while (std::getline(lines, line)) {
    const JsonValue value = JsonValue::Parse(line);  // throws if malformed
    const std::string& type = value.At("type").AsString();
    if (type == "record") ++records;
    if (type == "campaign") ++campaigns;
  }
  EXPECT_EQ(campaigns, 1);
  EXPECT_EQ(records, 6);
}

TEST(ProgressSinkTest, ReportsCompletion) {
  CampaignConfig config = BaseConfig();
  config.max_sites = 4;
  std::ostringstream out;
  // Zero interval so even this tiny run renders at least once.
  ProgressSink sink(out, std::chrono::milliseconds(0));
  CampaignExecutor::Shared().Run(SingleCampaignPlan(config), sink);
  EXPECT_NE(out.str().find("4/4 experiments"), std::string::npos);
}

}  // namespace
}  // namespace saffire
