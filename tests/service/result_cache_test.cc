// Content-addressed result cache: a completed campaign stored once must
// replay from disk with zero simulation and a byte-identical record stream,
// and every kind of damage — absent, corrupt, truncated, key-mismatched, or
// short entries — must degrade to a miss, never to a wrong record.
#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "service/chaos.h"
#include "service/run.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

CampaignConfig BaseConfig() {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-10";
  config.workload.m = config.workload.k = config.workload.n = 10;
  config.max_sites = 12;
  return config;
}

// A fresh cache directory per test, removed on teardown.
class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("saffire_result_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  // A complete, storable entry built from the serial ground truth.
  static CheckpointCampaign EntryFor(const CampaignConfig& config) {
    const CampaignResult result = RunCampaignSerial(config);
    CheckpointCampaign entry;
    entry.total_experiments = static_cast<std::int64_t>(result.records.size());
    entry.golden_cycles = result.golden_cycles;
    entry.golden_pe_steps = result.golden_pe_steps;
    entry.golden_cache_hit = result.golden_cache_hit;
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      entry.records.emplace(static_cast<std::int64_t>(i), result.records[i]);
    }
    return entry;
  }

  std::filesystem::path dir_;
};

TEST_F(ResultCacheTest, StoreThenLoadRoundTripsEveryRecord) {
  const ResultCache cache(dir());
  const CampaignConfig config = BaseConfig();
  const CheckpointCampaign entry = EntryFor(config);
  ASSERT_TRUE(cache.Store(config, entry));
  ASSERT_TRUE(std::filesystem::exists(cache.EntryPath(config)));

  const auto loaded = cache.Load(config, entry.total_experiments);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->total_experiments, entry.total_experiments);
  EXPECT_EQ(loaded->golden_cycles, entry.golden_cycles);
  EXPECT_EQ(loaded->golden_pe_steps, entry.golden_pe_steps);
  EXPECT_EQ(loaded->records, entry.records);
}

TEST_F(ResultCacheTest, AbsentEntryIsAMiss) {
  const ResultCache cache(dir());
  EXPECT_FALSE(cache.Load(BaseConfig(), 12).has_value());
}

TEST_F(ResultCacheTest, CorruptEntryIsAMissNeverWrongRecords) {
  const ResultCache cache(dir());
  const CampaignConfig config = BaseConfig();
  const CheckpointCampaign entry = EntryFor(config);
  ASSERT_TRUE(cache.Store(config, entry));
  const std::string path = cache.EntryPath(config);

  // Garbage file.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not jsonl at all\n";
  }
  EXPECT_FALSE(cache.Load(config, entry.total_experiments).has_value());

  // Truncated mid-stream: the CRC seal rejects the torn tail, and the
  // now-incomplete campaign is a miss.
  ASSERT_TRUE(cache.Store(config, entry));
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << full.substr(0, full.size() / 2);
  }
  EXPECT_FALSE(cache.Load(config, entry.total_experiments).has_value());
}

TEST_F(ResultCacheTest, KeyMismatchedEntryIsAMiss) {
  // Simulate a filename collision / tampering: campaign A's entry sitting
  // under campaign B's path. The embedded CampaignKey must veto it.
  const ResultCache cache(dir());
  const CampaignConfig config_a = BaseConfig();
  CampaignConfig config_b = BaseConfig();
  config_b.bit = 3;
  const CheckpointCampaign entry = EntryFor(config_a);
  ASSERT_TRUE(cache.Store(config_a, entry));
  std::filesystem::copy_file(
      cache.EntryPath(config_a), cache.EntryPath(config_b),
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_FALSE(cache.Load(config_b, entry.total_experiments).has_value());
  // The original entry is untouched and still serves.
  EXPECT_TRUE(cache.Load(config_a, entry.total_experiments).has_value());
}

TEST_F(ResultCacheTest, WrongExperimentCountIsAMiss) {
  const ResultCache cache(dir());
  const CampaignConfig config = BaseConfig();
  const CheckpointCampaign entry = EntryFor(config);
  ASSERT_TRUE(cache.Store(config, entry));
  EXPECT_FALSE(cache.Load(config, entry.total_experiments + 1).has_value());
}

TEST_F(ResultCacheTest, RefusesToStoreIncompleteCampaigns) {
  // Density is a caller contract, not an I/O condition: violating it is a
  // programming error, and nothing may land under the entry path.
  const ResultCache cache(dir());
  const CampaignConfig config = BaseConfig();
  CheckpointCampaign entry = EntryFor(config);
  entry.records.erase(entry.records.begin());
  EXPECT_THROW(cache.Store(config, entry), std::invalid_argument);
  EXPECT_FALSE(std::filesystem::exists(cache.EntryPath(config)));
}

TEST_F(ResultCacheTest, RefusesToStoreSparseRecordIndices) {
  // Same size as a complete campaign but indices 1…N instead of 0…N−1: a
  // size-only check would store it, and it would load back as "complete".
  const ResultCache cache(dir());
  const CampaignConfig config = BaseConfig();
  CheckpointCampaign entry = EntryFor(config);
  const ExperimentRecord shifted = entry.records.begin()->second;
  entry.records.erase(entry.records.begin());
  entry.records.emplace(entry.total_experiments, shifted);
  ASSERT_EQ(static_cast<std::int64_t>(entry.records.size()),
            entry.total_experiments);
  EXPECT_FALSE(entry.Complete());
  EXPECT_THROW(cache.Store(config, entry), std::invalid_argument);
  EXPECT_FALSE(std::filesystem::exists(cache.EntryPath(config)));
}

// The facade contract: the second identical sweep is 100% cache hits,
// simulates nothing, and streams byte-identical CSV.
TEST_F(ResultCacheTest, RepeatedSweepReplaysWithoutSimulating) {
  ResultCache cache(dir());
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-10";
  workload.m = workload.k = workload.n = 10;
  spec.workloads = {workload};
  spec.max_sites = 12;
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);

  RunOptions options;
  options.result_cache = &cache;

  std::ostringstream cold_out;
  CsvRecordSink cold_sink(cold_out);
  const SweepOutcome cold = RunSweep(plan, options, cold_sink);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 2);
  EXPECT_EQ(cold.cache_stores, 2);

  // Warm run on a private executor so its stats isolate this sweep.
  CampaignExecutor executor(ExecutorOptions{.threads = 2});
  options.executor = &executor;
  std::ostringstream warm_out;
  CsvRecordSink warm_sink(warm_out);
  const SweepOutcome warm = RunSweep(plan, options, warm_sink);
  EXPECT_EQ(warm.cache_hits, 2);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.cache_stores, 0);
  EXPECT_EQ(executor.stats().experiments_run, 0);
  EXPECT_EQ(executor.stats().experiments_replayed, plan.total_experiments());
  EXPECT_EQ(warm_out.str(), cold_out.str());
  EXPECT_FALSE(warm_out.str().empty());
}

// A symmetry-reduced sweep must populate the cache with the same entry a
// plain sweep would — the cached bytes are record-level, not plan-level.
TEST_F(ResultCacheTest, SymmetryRunsShareEntriesWithPlainRuns) {
  ResultCache cache(dir());
  CampaignConfig config = BaseConfig();
  config.max_sites = 0;  // exhaustive, so symmetry has duplicates to fold
  config.symmetry = true;

  RunOptions options;
  options.result_cache = &cache;
  std::ostringstream symmetry_out;
  CsvRecordSink symmetry_sink(symmetry_out);
  const SweepOutcome stored =
      RunSweep(SingleCampaignPlan(config), options, symmetry_sink);
  EXPECT_EQ(stored.cache_stores, 1);

  // The plain (symmetry-off) campaign hits the same entry: symmetry is
  // excluded from the campaign key by contract.
  config.symmetry = false;
  CampaignExecutor executor(ExecutorOptions{.threads = 2});
  options.executor = &executor;
  std::ostringstream plain_out;
  CsvRecordSink plain_sink(plain_out);
  const SweepOutcome warm =
      RunSweep(SingleCampaignPlan(config), options, plain_sink);
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(executor.stats().experiments_run, 0);
  EXPECT_EQ(plain_out.str(), symmetry_out.str());
}

// A self-check mismatch marks the whole run untrusted (exit 3); its
// records — correct or not — must never become permanent cache hits.
TEST_F(ResultCacheTest, MismatchedRunsAreNeverCached) {
  ResultCache cache(dir());
  CampaignConfig config = BaseConfig();
  config.engine = CampaignEngine::kBatch;

  chaos::ChaosSpec chaos_spec;
  chaos_spec.selfcheck_lie_every = 1;  // every self-check reports mismatch
  chaos::Install(chaos_spec);

  CampaignExecutor executor(ExecutorOptions{.threads = 2});
  RunOptions options;
  options.executor = &executor;
  options.result_cache = &cache;
  options.resilience.selfcheck_rate = 1.0;
  CollectorSink collector;
  const SweepOutcome outcome =
      RunSweep(SingleCampaignPlan(config), options, collector);
  chaos::Clear();

  // The campaign still completed (the "mismatched" group recomputed on the
  // fallback rung), but the run is unhealthy and nothing was stored.
  EXPECT_EQ(outcome.records, config.max_sites);
  EXPECT_GT(outcome.selfcheck_mismatches, 0);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.cache_stores, 0);
  EXPECT_TRUE(std::filesystem::is_empty(dir_));

  // A later healthy run gets no hit — it simulates and stores as normal.
  CollectorSink clean;
  const SweepOutcome rerun =
      RunSweep(SingleCampaignPlan(config), options, clean);
  EXPECT_EQ(rerun.cache_hits, 0);
  EXPECT_EQ(rerun.cache_misses, 1);
  EXPECT_EQ(rerun.cache_stores, 1);
}

TEST_F(ResultCacheTest, ShardedRunsBypassTheCache) {
  ResultCache cache(dir());
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-10";
  workload.m = workload.k = workload.n = 10;
  spec.workloads = {workload};
  spec.max_sites = 12;
  spec.shards = 2;
  const CampaignPlan plan = BuildCampaignPlan(spec);

  RunOptions options;
  options.result_cache = &cache;
  options.only_shard = 0;
  CollectorSink collector;
  const SweepOutcome outcome = RunSweep(plan, options, collector);
  EXPECT_EQ(outcome.cache_hits, 0);
  EXPECT_EQ(outcome.cache_misses, 0);
  EXPECT_EQ(outcome.cache_stores, 0);
  // No half-campaign entry may have been written.
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST(ResultCacheCtorTest, RejectsUncreatableDirectories) {
  EXPECT_THROW(ResultCache("/proc/definitely/not/creatable"),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
