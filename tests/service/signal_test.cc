// Graceful shutdown end to end: a SIGTERM mid-sweep must flip the stop
// token, drain the executor without losing in-flight records, leave a
// loadable JSONL checkpoint, and — the paper-scale property — a resumed
// run must produce a CSV byte-identical to the uninterrupted one, for
// every execution engine.
#include "service/signal.h"

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>
#include <stdexcept>
#include <string>

#include "service/checkpoint.h"
#include "service/executor.h"
#include "service/sink.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec(CampaignEngine engine) {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  spec.engine = engine;
  spec.max_sites = 24;
  return spec;
}

// Raises SIGTERM (to this process, caught by ScopedSignalDrain) once the
// Kth record has been delivered — an in-process stand-in for the operator's
// kill arriving mid-sweep.
class SigtermAfter : public RecordSink {
 public:
  explicit SigtermAfter(std::int64_t after) : after_(after) {}

  void OnRecord(const CampaignBeginInfo& /*info*/,
                std::int64_t /*experiment_index*/,
                const ExperimentRecord& /*record*/) override {
    if (++seen_ == after_) std::raise(SIGTERM);
  }

 private:
  std::int64_t after_;
  std::int64_t seen_ = 0;
};

TEST(SignalTest, HandlerFlipsTheTokenAndReportsTheSignal) {
  ScopedSignalDrain drain;
  EXPECT_FALSE(drain.triggered());
  EXPECT_EQ(drain.signal_number(), 0);
  EXPECT_FALSE(drain.token()->load());
  std::raise(SIGINT);
  EXPECT_TRUE(drain.triggered());
  EXPECT_EQ(drain.signal_number(), SIGINT);
  EXPECT_TRUE(drain.token()->load());
}

TEST(SignalTest, SecondLiveInstanceIsRejectedWithoutPoisoningTheCount) {
  {
    ScopedSignalDrain drain;
    EXPECT_THROW(ScopedSignalDrain second, std::invalid_argument);
  }
  // The failed construction rolled its count back: a fresh instance works.
  ScopedSignalDrain again;
  EXPECT_FALSE(again.triggered());
}

TEST(SignalTest, ResumeAfterSigtermReproducesTheCsvForEveryEngine) {
  for (const CampaignEngine engine :
       {CampaignEngine::kDifferential, CampaignEngine::kFull,
        CampaignEngine::kReference, CampaignEngine::kBatch}) {
    SCOPED_TRACE(ToString(engine));
    const CampaignPlan plan = BuildCampaignPlan(BaseSpec(engine));

    // The ground truth: one uninterrupted run's CSV.
    std::ostringstream csv_full;
    {
      CsvRecordSink csv(csv_full);
      CampaignExecutor::Shared().Run(plan, csv);
    }

    // Interrupted run: SIGTERM after the 2nd record, cooperative drain,
    // JSONL checkpoint written up to the drained frontier.
    std::ostringstream jsonl;
    bool stopped = false;
    {
      JsonlRecordSink checkpoint_sink(jsonl);
      SigtermAfter killer(2);
      TeeSink tee({&checkpoint_sink, &killer});
      ScopedSignalDrain drain;
      RunOptions options;
      options.max_parallelism = 2;
      options.stop = drain.token();
      const SweepOutcome outcome =
          CampaignExecutor::Shared().Run(plan, tee, options);
      EXPECT_TRUE(drain.triggered());
      EXPECT_EQ(drain.signal_number(), SIGTERM);
      stopped = outcome.stopped;
      if (stopped) {
        EXPECT_FALSE(outcome.ok());
      }
    }

    // The drained checkpoint loads cleanly (no torn lines) and resumes to
    // a CSV byte-identical to the uninterrupted run.
    std::istringstream in(jsonl.str());
    CheckpointLoadStats stats;
    const SweepCheckpoint checkpoint = LoadSweepCheckpoint(in, &stats);
    EXPECT_EQ(stats.dropped, 0) << "cooperative drain tore a line";
    ValidateCheckpoint(checkpoint, plan);
    if (stopped) {
      EXPECT_LT(checkpoint.TotalRecords(), plan.total_experiments());
    }

    std::ostringstream csv_resumed;
    {
      CsvRecordSink csv(csv_resumed);
      RunOptions options;
      options.checkpoint = &checkpoint;
      const SweepOutcome outcome =
          CampaignExecutor::Shared().Run(plan, csv, options);
      EXPECT_TRUE(outcome.ok());
      EXPECT_EQ(outcome.records, plan.total_experiments());
    }
    EXPECT_EQ(csv_resumed.str(), csv_full.str());
  }
}

}  // namespace
}  // namespace saffire
