// The mitigation axis end to end: spec round-trips and validation gates,
// campaign identity, rung equivalence of mitigated records on the
// extraction network, accuracy recovery on the trained MLP, and the
// CSV/JSONL record surfaces.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "service/network_run.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

const std::vector<MitigationPolicy>& AllPolicies() {
  static const std::vector<MitigationPolicy> policies = {
      MitigationPolicy::kNone, MitigationPolicy::kColumnRemap,
      MitigationPolicy::kRowRemap, MitigationPolicy::kPruneChannel,
      MitigationPolicy::kAbftCorrect};
  return policies;
}

NetworkSweepSpec ExtractionSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kExtraction;
  spec.network.batch = 4;
  spec.network.extraction_k = 8;
  spec.network.extraction_n = 8;
  spec.max_sites = 6;
  return spec;
}

NetworkSweepSpec MlpSpec() {
  NetworkSweepSpec spec;
  spec.accel = SmallAccel();
  spec.network.kind = NetworkKind::kMlp;
  spec.network.batch = 16;
  spec.network.hidden = 8;
  spec.network.train_samples = 300;
  spec.network.train_epochs = 40;
  spec.bits = {24};  // high accumulator bit: visible logit damage
  spec.max_sites = 4;
  return spec;
}

TEST(NetworkMitigationSpecTest, JsonRoundTripPreservesMitigations) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.mitigations = AllPolicies();
  EXPECT_EQ(spec.CampaignCount(), AllPolicies().size());
  const std::string json = spec.ToJson();
  const NetworkSweepSpec parsed = ParseNetworkSweepSpec(json);
  EXPECT_EQ(parsed.mitigations, spec.mitigations);
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(NetworkMitigationSpecTest, ValidateGatesPredictorPoliciesBySignal) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.rung = NetworkRung::kCycleAccurate;
  spec.signals = {MacSignal::kActForward};
  spec.mitigations = {MitigationPolicy::kNone};
  EXPECT_NO_THROW(spec.Validate());
  spec.mitigations = {MitigationPolicy::kColumnRemap};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.mitigations.clear();
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(NetworkMitigationSpecTest, CampaignKeyIncludesMitigation) {
  const NetworkSweepSpec spec = ExtractionSpec();
  NetworkCampaign remap;
  remap.mitigation = MitigationPolicy::kColumnRemap;
  const NetworkCampaign none;
  EXPECT_NE(NetworkCampaignKey(spec, remap), NetworkCampaignKey(spec, none));
}

TEST(NetworkMitigationSweepTest, ExtractionRungsAreEquivalentPerPolicy) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.mitigations = AllPolicies();
  NetworkCollectorSink appfi;
  spec.rung = NetworkRung::kAppFi;
  EXPECT_TRUE(RunNetworkSweep(spec, appfi).ok());
  NetworkCollectorSink cycle;
  spec.rung = NetworkRung::kCycleAccurate;
  EXPECT_TRUE(RunNetworkSweep(spec, cycle).ok());

  ASSERT_EQ(appfi.records.size(), AllPolicies().size() * 6);
  ASSERT_EQ(cycle.records.size(), appfi.records.size());
  for (std::size_t i = 0; i < appfi.records.size(); ++i) {
    EXPECT_TRUE(RungEquivalent(appfi.records[i], cycle.records[i]))
        << "record " << i;
  }
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  for (const NetworkRecord& record : appfi.records) {
    const MitigationPolicy policy =
        plan.campaigns[record.campaign_index].mitigation;
    if (policy == MitigationPolicy::kNone) {
      // Unmitigated campaigns carry the sentinels.
      EXPECT_FALSE(record.mit_sdc);
      EXPECT_EQ(record.mit_corrupted, 0);
      EXPECT_EQ(record.mit_correct_faulty, -1);
    } else if (policy == MitigationPolicy::kAbftCorrect) {
      // A single-column adder fault is exactly ABFT-correctable: the
      // mitigated inference is clean.
      EXPECT_FALSE(record.mit_sdc);
      EXPECT_EQ(record.mit_corrupted, 0);
    } else if (policy == MitigationPolicy::kPruneChannel) {
      // Pruning deliberately zeroes the reached channel: residual deviation
      // is confined to it but top-1 semantics do not apply to extraction.
      EXPECT_TRUE(record.mit_sdc);
      EXPECT_GT(record.mit_corrupted, 0);
    }
  }
}

TEST(NetworkMitigationSweepTest, ColumnRemapRecoversAccuracyOnFirstLayer) {
  NetworkSweepSpec spec = MlpSpec();
  spec.layers = {0};  // fault scoped to fc1: remap shelters salient hiddens
  spec.mitigations = {MitigationPolicy::kColumnRemap};
  for (const NetworkRung rung :
       {NetworkRung::kAppFi, NetworkRung::kCycleAccurate}) {
    spec.rung = rung;
    NetworkCollectorSink sink;
    EXPECT_TRUE(RunNetworkSweep(spec, sink).ok());
    ASSERT_EQ(sink.records.size(), 4u);
    std::int64_t base = 0, mitigated = 0, sdc = 0;
    for (const NetworkRecord& record : sink.records) {
      ASSERT_GE(record.correct_faulty, 0);
      ASSERT_GE(record.mit_correct_faulty, 0);
      base += record.correct_faulty;
      mitigated += record.mit_correct_faulty;
      sdc += record.sdc ? 1 : 0;
    }
    EXPECT_GT(sdc, 0) << ToString(rung);
    EXPECT_GT(mitigated, base) << ToString(rung);
  }
}

TEST(NetworkMitigationSweepTest, PruneRecoversHalfTheLostAccuracy) {
  // The acceptance scenario: a permanent whole-network SA1 on a high
  // accumulator bit; pruning the known-corrupt channel must win back at
  // least half of the lost top-1 accuracy, identically on both rungs.
  NetworkSweepSpec spec = MlpSpec();
  spec.mitigations = {MitigationPolicy::kPruneChannel};
  for (const NetworkRung rung :
       {NetworkRung::kAppFi, NetworkRung::kCycleAccurate}) {
    spec.rung = rung;
    NetworkCollectorSink sink;
    EXPECT_TRUE(RunNetworkSweep(spec, sink).ok());
    ASSERT_EQ(sink.records.size(), 4u);
    std::int64_t golden = 0, base = 0, mitigated = 0;
    for (const NetworkRecord& record : sink.records) {
      golden += record.correct_golden;
      base += record.correct_faulty;
      mitigated += record.mit_correct_faulty;
    }
    ASSERT_GT(golden, base) << "fault must degrade accuracy, "
                            << ToString(rung);
    EXPECT_GE(mitigated - base, (golden - base + 1) / 2) << ToString(rung);
  }
}

TEST(NetworkMitigationSweepTest, CsvRowsCarryThePolicyColumn) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.max_sites = 2;
  spec.mitigations = {MitigationPolicy::kNone,
                      MitigationPolicy::kPruneChannel};
  std::ostringstream csv;
  NetworkCsvSink sink(csv);
  EXPECT_TRUE(RunNetworkSweep(spec, sink).ok());
  const std::string text = csv.str();
  EXPECT_NE(text.find(",mitigation,"), std::string::npos);
  EXPECT_NE(text.find(",none,"), std::string::npos);
  EXPECT_NE(text.find(",prune_channel,"), std::string::npos);
  EXPECT_NE(text.find(",mit_corrupted,"), std::string::npos);
}

TEST(NetworkMitigationSweepTest, CheckpointRoundTripsMitigatedRecords) {
  NetworkSweepSpec spec = ExtractionSpec();
  spec.max_sites = 3;
  spec.mitigations = {MitigationPolicy::kColumnRemap,
                      MitigationPolicy::kPruneChannel};
  std::ostringstream jsonl;
  NetworkJsonlSink jsonl_sink(jsonl);
  NetworkCollectorSink first;
  NetworkTeeSink tee({&jsonl_sink, &first});
  RunNetworkSweep(spec, tee);

  std::istringstream in(jsonl.str());
  const NetworkCheckpoint checkpoint = LoadNetworkCheckpoint(in);
  ASSERT_EQ(checkpoint.records.size(), first.records.size());
  NetworkRunOptions options;
  options.resume = &checkpoint;
  NetworkCollectorSink resumed;
  EXPECT_TRUE(RunNetworkSweep(spec, options, resumed).ok());
  ASSERT_EQ(resumed.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    // Equality covers every mit_* field: a lossy serialization would
    // replay a different record.
    EXPECT_EQ(resumed.records[i], first.records[i]) << "record " << i;
  }
}

}  // namespace
}  // namespace saffire
