// Sweep planning: axis expansion order, shard partitioning, and the JSON
// spec round-trip.
#include "service/sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.accel = SmallAccel();
  WorkloadSpec workload;
  workload.name = "gemm-20";
  workload.m = workload.k = workload.n = 20;
  spec.workloads = {workload};
  return spec;
}

TEST(SweepSpecTest, CampaignCountIsAxisProduct) {
  SweepSpec spec = BaseSpec();
  spec.dataflows = {Dataflow::kWeightStationary, Dataflow::kOutputStationary};
  spec.signals = {MacSignal::kAdderOut, MacSignal::kMulOut};
  spec.polarities = {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1};
  spec.bits = {4, 8, 31};
  EXPECT_EQ(spec.CampaignCount(), 1u * 2 * 2 * 2 * 3);
}

TEST(SweepSpecTest, ValidateRejectsEmptyAxes) {
  SweepSpec spec = BaseSpec();
  spec.bits.clear();
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = BaseSpec();
  spec.workloads.clear();
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = BaseSpec();
  spec.shards = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(CampaignPlanTest, ExpandsInCanonicalOrder) {
  SweepSpec spec = BaseSpec();
  spec.polarities = {StuckPolarity::kStuckAt1, StuckPolarity::kStuckAt0};
  spec.bits = {8, 31};
  const CampaignPlan plan = BuildCampaignPlan(spec);
  ASSERT_EQ(plan.campaigns.size(), 4u);
  // bit is the innermost axis, polarity the next.
  EXPECT_EQ(plan.campaigns[0].polarity, StuckPolarity::kStuckAt1);
  EXPECT_EQ(plan.campaigns[0].bit, 8);
  EXPECT_EQ(plan.campaigns[1].polarity, StuckPolarity::kStuckAt1);
  EXPECT_EQ(plan.campaigns[1].bit, 31);
  EXPECT_EQ(plan.campaigns[2].polarity, StuckPolarity::kStuckAt0);
  EXPECT_EQ(plan.campaigns[2].bit, 8);
  EXPECT_EQ(plan.campaigns[3].polarity, StuckPolarity::kStuckAt0);
  EXPECT_EQ(plan.campaigns[3].bit, 31);
  // Exhaustive over the 8×8 array.
  EXPECT_EQ(plan.total_experiments(), 4 * 64);
}

TEST(CampaignPlanTest, ConcatenatesHeterogeneousSpecs) {
  SweepSpec a = BaseSpec();
  SweepSpec b = BaseSpec();
  b.max_sites = 5;
  b.bits = {4, 31};
  const CampaignPlan plan = BuildCampaignPlan(std::vector<SweepSpec>{a, b});
  ASSERT_EQ(plan.campaigns.size(), 3u);
  EXPECT_EQ(plan.site_counts[0], 64);
  EXPECT_EQ(plan.site_counts[1], 5);
  EXPECT_EQ(plan.site_counts[2], 5);
  EXPECT_EQ(plan.total_experiments(), 64 + 5 + 5);
}

TEST(CampaignPlanTest, ShardsPartitionEveryCampaign) {
  SweepSpec spec = BaseSpec();
  spec.bits = {8, 31};
  spec.shards = 3;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  ASSERT_EQ(plan.shards.size(), 2u * 3);
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    std::int64_t covered = 0;
    std::int64_t expected_begin = 0;
    for (const PlannedShard& shard : plan.shards) {
      if (shard.campaign_index != c) continue;
      EXPECT_EQ(shard.begin, expected_begin);
      EXPECT_LT(shard.begin, shard.end);
      covered += shard.end - shard.begin;
      expected_begin = shard.end;
    }
    EXPECT_EQ(covered, plan.site_counts[c]);
    EXPECT_EQ(expected_begin, plan.site_counts[c]);
  }
}

TEST(CampaignPlanTest, ShardCountClampsToSites) {
  SweepSpec spec = BaseSpec();
  spec.max_sites = 2;
  spec.shards = 8;
  const CampaignPlan plan = BuildCampaignPlan(spec);
  // No empty shards: 2 sites cannot fill 8 shards.
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].begin, 0);
  EXPECT_EQ(plan.shards[0].end, 1);
  EXPECT_EQ(plan.shards[1].begin, 1);
  EXPECT_EQ(plan.shards[1].end, 2);
}

TEST(CampaignPlanTest, SingleCampaignPlanWrapsOneConfig) {
  CampaignConfig config;
  config.accel = SmallAccel();
  config.workload.name = "gemm-20";
  config.workload.m = config.workload.k = config.workload.n = 20;
  const CampaignPlan plan = SingleCampaignPlan(config);
  ASSERT_EQ(plan.campaigns.size(), 1u);
  EXPECT_EQ(plan.site_counts[0], 64);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].end, 64);
}

TEST(SweepSpecTest, JsonRoundTrip) {
  SweepSpec spec = BaseSpec();
  spec.dataflows = {Dataflow::kOutputStationary, Dataflow::kInputStationary};
  spec.signals = {MacSignal::kMulOut, MacSignal::kSouthForward};
  spec.polarities = {StuckPolarity::kStuckAt0};
  spec.bits = {4, 20};
  spec.kind = FaultKind::kTransientFlip;
  spec.max_sites = 12;
  spec.seed = 99;
  spec.engine = CampaignEngine::kFull;
  spec.shards = 4;

  const SweepSpec parsed = ParseSweepSpec(spec.ToJson());
  EXPECT_EQ(parsed.ToJson(), spec.ToJson());
  EXPECT_EQ(parsed.dataflows, spec.dataflows);
  EXPECT_EQ(parsed.signals, spec.signals);
  EXPECT_EQ(parsed.bits, spec.bits);
  EXPECT_EQ(parsed.kind, spec.kind);
  EXPECT_EQ(parsed.max_sites, spec.max_sites);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.engine, spec.engine);
  EXPECT_EQ(parsed.shards, spec.shards);
  ASSERT_EQ(parsed.workloads.size(), 1u);
  EXPECT_EQ(parsed.workloads[0].name, "gemm-20");
  EXPECT_EQ(parsed.workloads[0].m, 20);
}

TEST(SweepSpecTest, JsonRoundTripConvWorkload) {
  SweepSpec spec = BaseSpec();
  WorkloadSpec conv;
  conv.name = "conv-test";
  conv.op = OpType::kConv;
  conv.conv.batch = 1;
  conv.conv.in_channels = 3;
  conv.conv.height = 16;
  conv.conv.width = 16;
  conv.conv.out_channels = 3;
  conv.conv.kernel_h = 3;
  conv.conv.kernel_w = 3;
  conv.conv.stride = 1;
  conv.conv.pad = 1;
  spec.workloads = {conv};
  const SweepSpec parsed = ParseSweepSpec(spec.ToJson());
  EXPECT_EQ(parsed.ToJson(), spec.ToJson());
  ASSERT_EQ(parsed.workloads.size(), 1u);
  EXPECT_EQ(parsed.workloads[0].op, OpType::kConv);
  EXPECT_EQ(parsed.workloads[0].conv.kernel_h, 3);
  EXPECT_EQ(parsed.workloads[0].lowering, conv.lowering);
}

TEST(SweepSpecTest, ParseRejectsUnknownKeys) {
  SweepSpec spec = BaseSpec();
  std::string json = spec.ToJson();
  json.insert(1, "\"polarity\":[\"SA1\"],");  // typo for "polarities"
  EXPECT_THROW(ParseSweepSpec(json), std::invalid_argument);
}

TEST(CampaignKeyTest, DistinguishesConfigs) {
  CampaignConfig a;
  a.accel = SmallAccel();
  a.workload.name = "gemm-20";
  a.workload.m = a.workload.k = a.workload.n = 20;
  CampaignConfig b = a;
  EXPECT_EQ(CampaignKey(a), CampaignKey(b));
  b.bit = 9;
  EXPECT_NE(CampaignKey(a), CampaignKey(b));
  b = a;
  b.seed = 2;
  EXPECT_NE(CampaignKey(a), CampaignKey(b));
  b = a;
  b.workload.name = "renamed";  // cosmetic: does not affect records
  EXPECT_EQ(CampaignKey(a), CampaignKey(b));
  b = a;
  b.engine = CampaignEngine::kReference;  // engines are bit-identical
  EXPECT_EQ(CampaignKey(a), CampaignKey(b));
  b = a;
  b.symmetry = true;  // a symmetry run's records match a full run's
  EXPECT_EQ(CampaignKey(a), CampaignKey(b));
}

TEST(SweepSpecTest, SymmetryRoundTripsAndDefaultsOff) {
  SweepSpec spec = BaseSpec();
  EXPECT_FALSE(spec.symmetry);
  spec.symmetry = true;
  const SweepSpec parsed = ParseSweepSpec(spec.ToJson());
  EXPECT_TRUE(parsed.symmetry);
  EXPECT_EQ(parsed.ToJson(), spec.ToJson());
  for (const CampaignConfig& config : BuildCampaignPlan(parsed).campaigns) {
    EXPECT_TRUE(config.symmetry);
  }

  // A pre-symmetry spec (no "symmetry" key) still parses, flag off.
  EXPECT_FALSE(ParseSweepSpec(BaseSpec().ToJson()).symmetry);
}

TEST(CampaignContentHashTest, IsAStableRecordIdentity) {
  CampaignConfig a;
  a.accel = SmallAccel();
  a.workload.name = "gemm-20";
  a.workload.m = a.workload.k = a.workload.n = 20;

  // Shape: 16 lowercase hex chars (the cache's entry file stem).
  const std::string hash = CampaignContentHash(a);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(CampaignContentHash(a), hash);

  // Invariant across everything CampaignKey ignores...
  CampaignConfig b = a;
  b.engine = CampaignEngine::kPredicted;
  b.symmetry = true;
  b.batch_lanes = 7;
  b.workload.name = "renamed";
  EXPECT_EQ(CampaignContentHash(b), hash);

  // ...and sensitive to every record-relevant axis.
  for (const auto& mutate : std::vector<void (*)(CampaignConfig&)>{
           [](CampaignConfig& c) { c.bit = 9; },
           [](CampaignConfig& c) { c.seed = 2; },
           [](CampaignConfig& c) { c.polarity = StuckPolarity::kStuckAt0; },
           [](CampaignConfig& c) { c.signal = MacSignal::kMulOut; },
           [](CampaignConfig& c) { c.dataflow = Dataflow::kOutputStationary; },
           [](CampaignConfig& c) { c.kind = FaultKind::kTransientFlip; },
           [](CampaignConfig& c) { c.max_sites = 5; },
           [](CampaignConfig& c) { c.accel.array.rows = 4; },
           [](CampaignConfig& c) { c.workload.m = 19; }}) {
    CampaignConfig mutated = a;
    mutate(mutated);
    EXPECT_NE(CampaignContentHash(mutated), hash);
  }
}

}  // namespace
}  // namespace saffire
