#include "dnn/synthetic.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace saffire {
namespace {

TEST(DigitGlyphTest, ShapesAndRange) {
  for (int digit = 0; digit < kDigitClasses; ++digit) {
    const auto glyph = DigitGlyph(digit);
    EXPECT_EQ(glyph.dim(0), 1);
    EXPECT_EQ(glyph.dim(1), kDigitPixels);
    float on_pixels = 0.0f;
    for (std::int64_t i = 0; i < glyph.size(); ++i) {
      EXPECT_TRUE(glyph.flat(i) == 0.0f || glyph.flat(i) == 1.0f);
      on_pixels += glyph.flat(i);
    }
    EXPECT_GT(on_pixels, 5.0f) << "digit " << digit;
  }
  EXPECT_THROW(DigitGlyph(-1), std::invalid_argument);
  EXPECT_THROW(DigitGlyph(10), std::invalid_argument);
}

TEST(DigitGlyphTest, GlyphsAreMutuallyDistinct) {
  for (int a = 0; a < kDigitClasses; ++a) {
    for (int b = a + 1; b < kDigitClasses; ++b) {
      int differing = 0;
      const auto ga = DigitGlyph(a);
      const auto gb = DigitGlyph(b);
      for (std::int64_t i = 0; i < kDigitPixels; ++i) {
        if (ga.flat(i) != gb.flat(i)) ++differing;
      }
      EXPECT_GE(differing, 4) << a << " vs " << b;
    }
  }
}

TEST(MakeSyntheticDigitsTest, ShapesLabelsAndDeterminism) {
  const auto dataset = MakeSyntheticDigits(200, 0.02, 42);
  EXPECT_EQ(dataset.size(), 200);
  EXPECT_EQ(dataset.inputs.dim(0), 200);
  EXPECT_EQ(dataset.inputs.dim(1), kDigitPixels);
  std::set<int> classes;
  for (const int label : dataset.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, kDigitClasses);
    classes.insert(label);
  }
  EXPECT_EQ(classes.size(), 10u);

  const auto replay = MakeSyntheticDigits(200, 0.02, 42);
  EXPECT_EQ(replay.inputs, dataset.inputs);
  EXPECT_EQ(replay.labels, dataset.labels);
}

TEST(MakeSyntheticDigitsTest, ValuesInUnitRange) {
  const auto dataset = MakeSyntheticDigits(50, 0.1, 7);
  for (std::int64_t i = 0; i < dataset.inputs.size(); ++i) {
    EXPECT_GE(dataset.inputs.flat(i), 0.0f);
    EXPECT_LE(dataset.inputs.flat(i), 1.0f);
  }
}

TEST(MakeSyntheticDigitsTest, RejectsBadArguments) {
  EXPECT_THROW(MakeSyntheticDigits(0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(MakeSyntheticDigits(10, 0.9, 1), std::invalid_argument);
}

TEST(MakeSyntheticDigitsTest, NoiseZeroSamplesMatchShiftedGlyphs) {
  const auto dataset = MakeSyntheticDigits(30, 0.0, 3);
  // Every sample must correlate strongly with its own glyph: at least half
  // of the glyph's on-pixels present (possibly shifted by one).
  for (std::int64_t s = 0; s < dataset.size(); ++s) {
    float total = 0.0f;
    for (std::int64_t i = 0; i < kDigitPixels; ++i) {
      total += dataset.inputs(s, i);
    }
    EXPECT_GT(total, 3.0f) << "sample " << s;
  }
}

}  // namespace
}  // namespace saffire
