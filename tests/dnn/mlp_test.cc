#include "dnn/mlp.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace saffire {
namespace {

TEST(MlpTest, ConstructionAndShapes) {
  const Mlp mlp(64, 32, 10, 1);
  EXPECT_EQ(mlp.w1().ShapeString(), "(64, 32)");
  EXPECT_EQ(mlp.b1().ShapeString(), "(1, 32)");
  EXPECT_EQ(mlp.w2().ShapeString(), "(32, 10)");
  EXPECT_EQ(mlp.b2().ShapeString(), "(1, 10)");
  EXPECT_THROW(Mlp(0, 4, 2, 1), std::invalid_argument);
}

TEST(MlpTest, ForwardShapeAndDeterminism) {
  const Mlp mlp(8, 4, 3, 2);
  FloatTensor batch({5, 8});
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    batch.flat(i) = static_cast<float>(i % 7) * 0.1f;
  }
  const auto logits = mlp.Forward(batch);
  EXPECT_EQ(logits.dim(0), 5);
  EXPECT_EQ(logits.dim(1), 3);
  EXPECT_EQ(mlp.Forward(batch), logits);
  EXPECT_THROW(mlp.Forward(FloatTensor({5, 9})), std::invalid_argument);
}

TEST(MlpTest, SameSeedSameNetwork) {
  const Mlp a(8, 4, 3, 7);
  const Mlp b(8, 4, 3, 7);
  EXPECT_EQ(a.w1(), b.w1());
  EXPECT_EQ(a.w2(), b.w2());
}

TEST(MlpTest, TrainingReducesLoss) {
  const auto dataset = MakeSyntheticDigits(300, 0.02, 11);
  Mlp mlp(kDigitPixels, 32, kDigitClasses, 5);
  Rng rng(6);
  const double first_loss = mlp.TrainEpoch(dataset, 0.1, 32, rng);
  double last_loss = first_loss;
  for (int epoch = 0; epoch < 5; ++epoch) {
    last_loss = mlp.TrainEpoch(dataset, 0.1, 32, rng);
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(MlpTest, LearnsSyntheticDigits) {
  const auto train = MakeSyntheticDigits(600, 0.02, 21);
  const auto test = MakeSyntheticDigits(200, 0.02, 22);
  Mlp mlp(kDigitPixels, 32, kDigitClasses, 5);
  Rng rng(6);
  const double train_accuracy = mlp.TrainUntil(train, 0.97, 60, 0.1, rng);
  EXPECT_GE(train_accuracy, 0.97);
  EXPECT_GE(mlp.Accuracy(test), 0.90);
}

TEST(ArgmaxRowsTest, FloatAndInt32) {
  const auto f = FloatTensor::FromRows({{0.1f, 0.9f, 0.2f}, {5.0f, 1.0f, 2.0f}});
  EXPECT_EQ(ArgmaxRows(f), (std::vector<int>{1, 0}));
  const auto i = Int32Tensor::FromRows({{-5, -1, -9}, {0, 0, 1}});
  EXPECT_EQ(ArgmaxRows(i), (std::vector<int>{1, 2}));
}

TEST(MlpTest, TrainEpochValidatesArguments) {
  const auto dataset = MakeSyntheticDigits(10, 0.0, 1);
  Mlp mlp(kDigitPixels, 8, kDigitClasses, 1);
  Rng rng(1);
  EXPECT_THROW(mlp.TrainEpoch(dataset, 0.1, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
