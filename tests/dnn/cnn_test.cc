#include "dnn/cnn.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fi/injector.h"
#include "tensor/shift_gemm.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 512;
  config.spad_rows = 1024;
  config.acc_rows = 512;
  config.dram_bytes = 8 << 20;
  return config;
}

ConvParams PaperConv() {
  ConvParams p;
  p.in_channels = 3;
  p.height = 16;
  p.width = 16;
  p.out_channels = 8;
  p.kernel_h = 3;
  p.kernel_w = 3;
  return p;
}

Int8Tensor TestImage(std::uint64_t seed) {
  Rng rng(seed);
  Int8Tensor image({1, 3, 16, 16});
  for (std::int64_t i = 0; i < image.size(); ++i) {
    image.flat(i) = static_cast<std::int8_t>(rng.UniformInt(0, 60));
  }
  return image;
}

TEST(MaxPool2x2Test, PicksMaxima) {
  Int8Tensor input({1, 1, 2, 4});
  input(0, 0, 0, 0) = 1;
  input(0, 0, 0, 1) = 5;
  input(0, 0, 1, 0) = -3;
  input(0, 0, 1, 1) = 2;
  input(0, 0, 0, 2) = -8;
  input(0, 0, 0, 3) = -1;
  input(0, 0, 1, 2) = -2;
  input(0, 0, 1, 3) = -9;
  const auto out = MaxPool2x2(input);
  EXPECT_EQ(out.ShapeString(), "(1, 1, 1, 2)");
  EXPECT_EQ(out(0, 0, 0, 0), 5);
  EXPECT_EQ(out(0, 0, 0, 1), -1);
}

TEST(MaxPool2x2Test, DropsOddEdges) {
  const auto out = MaxPool2x2(Int8Tensor({1, 2, 5, 7}));
  EXPECT_EQ(out.ShapeString(), "(1, 2, 2, 3)");
  EXPECT_THROW(MaxPool2x2(Int8Tensor({1, 1, 1, 4})), std::invalid_argument);
  EXPECT_THROW(MaxPool2x2(Int8Tensor({2, 4})), std::invalid_argument);
}

TEST(SmallCnnTest, ShapesAndDeterminism) {
  const SmallCnn cnn(PaperConv(), 10, 7);
  const auto image = TestImage(1);
  const auto taps = cnn.Forward(image, nullptr, ExecOptions{});
  EXPECT_EQ(taps.conv_raw.ShapeString(), "(1, 8, 14, 14)");
  EXPECT_EQ(taps.conv_act.ShapeString(), "(1, 8, 14, 14)");
  EXPECT_EQ(taps.pooled.ShapeString(), "(1, 8, 7, 7)");
  EXPECT_EQ(taps.logits.ShapeString(), "(1, 10)");
  const auto replay = cnn.Forward(image, nullptr, ExecOptions{});
  EXPECT_EQ(replay.logits, taps.logits);
}

TEST(SmallCnnTest, AccelMatchesCpuBitExactly) {
  const SmallCnn cnn(PaperConv(), 10, 7);
  const auto image = TestImage(2);
  const auto cpu = cnn.Forward(image, nullptr, ExecOptions{});
  Accelerator accel(TestConfig());
  Driver driver(accel);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    ExecOptions options;
    options.dataflow = dataflow;
    const auto hw = cnn.Forward(image, &driver, options);
    EXPECT_EQ(hw.conv_raw, cpu.conv_raw) << ToString(dataflow);
    EXPECT_EQ(hw.pooled, cpu.pooled) << ToString(dataflow);
    EXPECT_EQ(hw.logits, cpu.logits) << ToString(dataflow);
  }
}

TEST(SmallCnnTest, BothConvLoweringsAgree) {
  const SmallCnn cnn(PaperConv(), 10, 7);
  const auto image = TestImage(3);
  Accelerator accel(TestConfig());
  Driver driver(accel);
  ExecOptions shift;
  shift.conv_lowering = ConvLowering::kShiftGemm;
  ExecOptions im2col;
  im2col.conv_lowering = ConvLowering::kIm2Col;
  EXPECT_EQ(cnn.Forward(image, &driver, shift).logits,
            cnn.Forward(image, &driver, im2col).logits);
}

TEST(SmallCnnTest, WsFaultCorruptsWholeChannelThenAttenuates) {
  const SmallCnn cnn(PaperConv(), 10, 7);
  const auto image = TestImage(4);
  Accelerator accel(TestConfig());
  Driver driver(accel);
  const auto golden = cnn.Forward(image, &driver, ExecOptions{});

  // Column 4 of the shift-GEMM stationary matrix feeds channel 1 (and,
  // via the second column tile, channel 6): a high stuck bit corrupts the
  // full channels at conv_raw, then ReLU/shift/pool attenuate.
  FaultInjector injector(
      {StuckAtAdder(PeCoord{2, 4}, 20, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  const auto faulty = cnn.Forward(image, &driver, ExecOptions{});
  accel.array().ClearFaultHook();

  // The fault can only reach channels 1 and 6 (Fig. 3f mechanism: the
  // faulty column serves (k=1, s=1) and, via the second column tile,
  // (k=6, s=2)); within them, value masking (negative partial sums already
  // carry the stuck bit) keeps the corruption partial.
  for (std::int64_t k = 0; k < 8; ++k) {
    std::int64_t corrupted = 0;
    for (std::int64_t p = 0; p < 14; ++p) {
      for (std::int64_t q = 0; q < 14; ++q) {
        if (faulty.conv_raw(0, k, p, q) != golden.conv_raw(0, k, p, q)) {
          ++corrupted;
        }
      }
    }
    if (k == 1 || k == 6) continue;
    EXPECT_EQ(corrupted, 0) << "channel " << k;
  }
  const double raw_fraction =
      SmallCnn::CorruptedFraction(golden.conv_raw, faulty.conv_raw);
  const double act_fraction =
      SmallCnn::CorruptedFraction(golden.conv_act, faulty.conv_act);
  const double pooled_fraction =
      SmallCnn::CorruptedFraction(golden.pooled, faulty.pooled);
  EXPECT_GT(raw_fraction, 0.0);
  EXPECT_LE(raw_fraction, 2.0 / 8.0);
  EXPECT_LE(act_fraction, raw_fraction + 1e-12);
  EXPECT_GT(pooled_fraction, 0.0);
  // The dense head mixes every pooled value into every logit.
  EXPECT_GT(SmallCnn::CorruptedFraction(golden.logits, faulty.logits), 0.5);
}

TEST(SmallCnnTest, MaskedFaultLeavesAllTapsClean) {
  // With the 3×3×3×3 kernel, S·K = 9: array columns 9..15 never touch the
  // conv — and a dense-layer fault is the only way those columns matter.
  ConvParams conv = PaperConv();
  conv.out_channels = 3;
  const SmallCnn cnn(conv, 10, 7);
  const auto image = TestImage(5);
  Accelerator accel(TestConfig());
  Driver driver(accel);
  const auto golden = cnn.Forward(image, &driver, ExecOptions{});

  FaultInjector injector(
      {StuckAtAdder(PeCoord{2, 12}, 20, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  const auto faulty = cnn.Forward(image, &driver, ExecOptions{});
  accel.array().ClearFaultHook();

  EXPECT_EQ(faulty.conv_raw, golden.conv_raw);
  // The dense GEMM (147×10) does not use column 12 either — fully masked.
  EXPECT_EQ(faulty.logits, golden.logits);
}

TEST(SmallCnnTest, RejectsBadConfigs) {
  ConvParams conv = PaperConv();
  EXPECT_THROW(SmallCnn(conv, 1, 1), std::invalid_argument);
  conv.height = 3;
  conv.width = 3;
  EXPECT_THROW(SmallCnn(conv, 10, 1), std::invalid_argument);
}

TEST(SmallCnnTest, RejectsWrongInputShape) {
  const SmallCnn cnn(PaperConv(), 10, 7);
  EXPECT_THROW(cnn.Forward(Int8Tensor({1, 3, 16, 15}), nullptr,
                           ExecOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace saffire
