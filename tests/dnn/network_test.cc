// PreparedNetwork: topology preparation, the LayerGemm execution seam, and
// the network-outcome helpers (LabelAccuracy / Top1Flips).
#include "dnn/network.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "accel/driver.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig TestAccel() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 1024;
  config.spad_rows = 2048;
  config.acc_rows = 1024;
  config.dram_bytes = 8 << 20;
  return config;
}

NetworkSpec SmallMlp() {
  NetworkSpec spec;
  spec.kind = NetworkKind::kMlp;
  spec.batch = 16;
  spec.hidden = 16;
  spec.train_samples = 300;
  spec.train_epochs = 40;
  spec.train_target = 0.9;
  return spec;
}

LayerGemm HostGemm() {
  return [](int, const Int8Tensor& a, const Int8Tensor& b) {
    return GemmRef(a, b);
  };
}

TEST(NetworkKindTest, RoundTripsEveryName) {
  for (const NetworkKind kind :
       {NetworkKind::kExtraction, NetworkKind::kMlp, NetworkKind::kCnn}) {
    EXPECT_EQ(ParseNetworkKind(ToString(kind)), kind);
  }
}

TEST(NetworkKindTest, ParseRejectsUnknownNamesNamingTheChoices) {
  try {
    ParseNetworkKind("resnet");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("resnet"), std::string::npos) << message;
    EXPECT_NE(message.find("extraction|mlp|cnn"), std::string::npos)
        << message;
  }
}

TEST(NetworkLayerCountTest, MatchesPreparedNetworks) {
  EXPECT_EQ(NetworkLayerCount(NetworkKind::kExtraction), 1);
  EXPECT_EQ(NetworkLayerCount(NetworkKind::kMlp), 2);
  EXPECT_EQ(NetworkLayerCount(NetworkKind::kCnn), 2);
}

TEST(NetworkSpecTest, ValidateRejectsDegenerateMembers) {
  NetworkSpec spec;
  spec.batch = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = NetworkSpec{};
  spec.noise = 2.0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = NetworkSpec{};
  spec.kind = NetworkKind::kExtraction;
  spec.extraction_k = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = NetworkSpec{};
  spec.kind = NetworkKind::kCnn;
  spec.conv_channels = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(PreparedNetworkTest, ExtractionIsOneAllOnesGemm) {
  NetworkSpec spec;
  spec.kind = NetworkKind::kExtraction;
  spec.batch = 4;
  spec.extraction_k = 8;
  spec.extraction_n = 8;
  const PreparedNetwork network(spec);
  ASSERT_EQ(network.layer_count(), NetworkLayerCount(spec.kind));
  EXPECT_EQ(network.layer_workload(0).name, "extract");
  EXPECT_TRUE(network.labels().empty());

  const auto inference = network.Run(HostGemm());
  ASSERT_EQ(inference.layer_outputs.size(), 1u);
  // ones(batch×k) · ones(k×n): every logit is k.
  for (std::int64_t i = 0; i < inference.logits.size(); ++i) {
    EXPECT_EQ(inference.logits.flat(i), spec.extraction_k);
  }
  EXPECT_EQ(inference.top1.size(),
            static_cast<std::size_t>(spec.batch));
}

TEST(PreparedNetworkTest, LayerWorkloadRejectsOutOfRangeIndex) {
  NetworkSpec spec;
  spec.kind = NetworkKind::kExtraction;
  const PreparedNetwork network(spec);
  EXPECT_THROW(network.layer_workload(-1), std::invalid_argument);
  EXPECT_THROW(network.layer_workload(1), std::invalid_argument);
}

TEST(PreparedNetworkTest, MlpLayersMatchTopologyAndLabelsScore) {
  const PreparedNetwork network(SmallMlp());
  ASSERT_EQ(network.layer_count(), 2);
  EXPECT_EQ(network.layer_workload(0).name, "fc1");
  EXPECT_EQ(network.layer_workload(1).name, "fc2");
  EXPECT_EQ(network.layer_workload(0).GemmK(), kDigitPixels);
  EXPECT_EQ(network.layer_workload(1).GemmN(), kDigitClasses);
  ASSERT_EQ(network.labels().size(), 16u);

  const auto inference = network.Run(HostGemm());
  ASSERT_EQ(inference.layer_outputs.size(), 2u);
  EXPECT_EQ(inference.layer_outputs[0].dim(1), 16);  // hidden
  // A trained network beats chance on its own evaluation batch.
  EXPECT_GT(LabelAccuracy(inference.top1, network.labels()), 0.5);
}

// The driver-equivalence invariant the sweep runner builds on: a fault-free
// accelerated inference is bit-identical to the host-GEMM inference.
TEST(PreparedNetworkTest, FaultFreeDriverInferenceMatchesHostGemm) {
  const PreparedNetwork network(SmallMlp());
  const auto host = network.Run(HostGemm());

  Accelerator accel(TestAccel());
  Driver driver(accel);
  ExecOptions exec;
  exec.dataflow = Dataflow::kWeightStationary;
  const auto accelerated = network.Run(
      [&](int, const Int8Tensor& a, const Int8Tensor& b) {
        return driver.Gemm(a, b, exec);
      });
  EXPECT_EQ(accelerated.logits, host.logits);
  EXPECT_EQ(accelerated.top1, host.top1);
  for (std::size_t i = 0; i < host.layer_outputs.size(); ++i) {
    EXPECT_EQ(accelerated.layer_outputs[i], host.layer_outputs[i]);
  }
}

TEST(PreparedNetworkTest, CnnLowersConvToIm2ColGemm) {
  NetworkSpec spec;
  spec.kind = NetworkKind::kCnn;
  spec.batch = 8;
  spec.conv_channels = 2;
  const PreparedNetwork network(spec);
  ASSERT_EQ(network.layer_count(), 2);
  EXPECT_EQ(network.layer_workload(0).name, "conv");
  EXPECT_EQ(network.layer_workload(0).op, OpType::kConv);
  EXPECT_EQ(network.layer_workload(0).lowering, ConvLowering::kIm2Col);
  EXPECT_EQ(network.layer_workload(1).name, "dense");

  const auto inference = network.Run(HostGemm());
  ASSERT_EQ(inference.layer_outputs.size(), 2u);
  EXPECT_EQ(inference.logits.dim(0), 8);
  EXPECT_EQ(inference.logits.dim(1), kDigitClasses);
}

TEST(PreparedNetworkTest, RunRejectsWrongShapeFromExecutor) {
  NetworkSpec spec;
  spec.kind = NetworkKind::kExtraction;
  const PreparedNetwork network(spec);
  const LayerGemm bad = [](int, const Int8Tensor&, const Int8Tensor&) {
    return Int32Tensor({1, 1});
  };
  EXPECT_THROW(network.Run(bad), std::invalid_argument);
}

TEST(LabelAccuracyTest, CountsAgreement) {
  EXPECT_DOUBLE_EQ(LabelAccuracy({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
  EXPECT_DOUBLE_EQ(LabelAccuracy({7}, {7}), 1.0);
  EXPECT_THROW(LabelAccuracy({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(LabelAccuracy({}, {}), std::invalid_argument);
}

TEST(Top1FlipsTest, CountsDisagreements) {
  EXPECT_EQ(Top1Flips({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(Top1Flips({1, 2, 3}, {3, 2, 1}), 2);
  EXPECT_EQ(Top1Flips({}, {}), 0);
  EXPECT_THROW(Top1Flips({1}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
