#include "dnn/quantize.h"

#include <gtest/gtest.h>

#include "fi/injector.h"

namespace saffire {
namespace {

AccelConfig TestAccel() {
  AccelConfig config;  // 16×16 array
  config.max_compute_rows = 256;
  config.spad_rows = 512;
  config.acc_rows = 256;
  config.dram_bytes = 8 << 20;
  return config;
}

// Shared trained network for the expensive tests.
class QuantizedMlpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_ = new Dataset(MakeSyntheticDigits(600, 0.02, 21));
    test_ = new Dataset(MakeSyntheticDigits(200, 0.02, 22));
    mlp_ = new Mlp(kDigitPixels, 32, kDigitClasses, 5);
    Rng rng(6);
    mlp_->TrainUntil(*train_, 0.97, 60, 0.1, rng);
    quantized_ = new QuantizedMlp(*mlp_, *train_);
  }
  static void TearDownTestSuite() {
    delete quantized_;
    delete mlp_;
    delete test_;
    delete train_;
    quantized_ = nullptr;
    mlp_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
  }

  static Dataset* train_;
  static Dataset* test_;
  static Mlp* mlp_;
  static QuantizedMlp* quantized_;
};

Dataset* QuantizedMlpTest::train_ = nullptr;
Dataset* QuantizedMlpTest::test_ = nullptr;
Mlp* QuantizedMlpTest::mlp_ = nullptr;
QuantizedMlp* QuantizedMlpTest::quantized_ = nullptr;

TEST(QuantizeSymmetricTest, RoundTripAccuracy) {
  auto tensor = FloatTensor({1, 5});
  tensor.flat(0) = 1.27f;
  tensor.flat(1) = -1.27f;
  tensor.flat(2) = 0.0f;
  tensor.flat(3) = 0.635f;
  tensor.flat(4) = 0.01f;
  float scale = 0.0f;
  const auto q = QuantizeSymmetric(tensor, scale);
  EXPECT_FLOAT_EQ(scale, 0.01f);
  EXPECT_EQ(q.flat(0), 127);
  EXPECT_EQ(q.flat(1), -127);
  EXPECT_EQ(q.flat(2), 0);
  EXPECT_EQ(q.flat(3), 64);  // 63.5 rounds to even
  EXPECT_EQ(q.flat(4), 1);
}

TEST(QuantizeSymmetricTest, AllZerosUseUnitScale) {
  auto tensor = FloatTensor({2, 2});
  float scale = 0.0f;
  const auto q = QuantizeSymmetric(tensor, scale);
  EXPECT_FLOAT_EQ(scale, 1.0f);
  for (std::int64_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.flat(i), 0);
  }
}

TEST(QuantizeSymmetricTest, SaturatesExactlyAtTheInt8Extremes) {
  // The scale is max|x|/127, so the extreme magnitudes land exactly on
  // ±127 — never beyond — and near-boundary values round to even.
  auto tensor = FloatTensor({1, 4});
  tensor.flat(0) = 254.0f;
  tensor.flat(1) = -254.0f;
  tensor.flat(2) = 253.0f;   // 126.5 in quantized units
  tensor.flat(3) = -253.0f;
  float scale = 0.0f;
  const auto q = QuantizeSymmetric(tensor, scale);
  EXPECT_FLOAT_EQ(scale, 2.0f);
  EXPECT_EQ(q.flat(0), 127);
  EXPECT_EQ(q.flat(1), -127);
  EXPECT_EQ(q.flat(2), 126);  // round half to even
  EXPECT_EQ(q.flat(3), -126);
  for (std::int64_t i = 0; i < q.size(); ++i) {
    EXPECT_GE(q.flat(i), -127);
    EXPECT_LE(q.flat(i), 127);
  }
}

TEST(QuantizeSymmetricTest, ZeroPointStaysAtZeroForSkewedData) {
  // Symmetric scheme: even an all-positive tensor keeps zero-point 0, so
  // real zeros quantize to exactly 0 and the negative range goes unused.
  auto tensor = FloatTensor({1, 3});
  tensor.flat(0) = 0.0f;
  tensor.flat(1) = 50.8f;
  tensor.flat(2) = 101.6f;
  float scale = 0.0f;
  const auto q = QuantizeSymmetric(tensor, scale);
  EXPECT_FLOAT_EQ(scale, 0.8f);
  EXPECT_EQ(q.flat(0), 0);
  EXPECT_EQ(q.flat(1), 64);  // 63.5 rounds to even
  EXPECT_EQ(q.flat(2), 127);
  for (std::int64_t i = 0; i < q.size(); ++i) {
    EXPECT_GE(q.flat(i), 0);  // nothing maps below the zero-point
  }
}

TEST(QuantizeSymmetricTest, TinyMagnitudesRoundTripThroughTheScale) {
  auto tensor = FloatTensor({1, 2});
  tensor.flat(0) = 1e-6f;
  tensor.flat(1) = -1e-6f;
  float scale = 0.0f;
  const auto q = QuantizeSymmetric(tensor, scale);
  EXPECT_EQ(q.flat(0), 127);
  EXPECT_EQ(q.flat(1), -127);
  EXPECT_NEAR(static_cast<float>(q.flat(0)) * scale, 1e-6f, 1e-9f);
}

TEST(ChooseRequantShiftTest, SmallestSufficientShift) {
  EXPECT_EQ(ChooseRequantShift(0), 0);
  EXPECT_EQ(ChooseRequantShift(127), 0);
  EXPECT_EQ(ChooseRequantShift(128), 1);
  EXPECT_EQ(ChooseRequantShift(255), 1);
  EXPECT_EQ(ChooseRequantShift(256), 2);
  EXPECT_EQ(ChooseRequantShift(1 << 20), 20 - 6);
  // The shift saturates at 31 — the widest rescale the modeled MVOUT8
  // hardware supports — even when the magnitude would need more.
  EXPECT_EQ(ChooseRequantShift((std::int64_t{1} << 37) - 1), 30);
  EXPECT_EQ(ChooseRequantShift(std::int64_t{1} << 62), 31);
}

TEST_F(QuantizedMlpTest, QuantizationPreservesAccuracy) {
  const double float_accuracy = mlp_->Accuracy(*test_);
  const double int8_accuracy = quantized_->AccuracyCpu(*test_);
  EXPECT_GE(int8_accuracy, float_accuracy - 0.05);
  EXPECT_GE(int8_accuracy, 0.85);
}

TEST_F(QuantizedMlpTest, AccelInferenceMatchesCpuBitExactly) {
  Accelerator accel(TestAccel());
  Driver driver(accel);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    const auto cpu = quantized_->PredictCpu(test_->inputs);
    const auto hw = quantized_->PredictAccel(test_->inputs, driver, dataflow);
    EXPECT_EQ(cpu, hw) << ToString(dataflow);
  }
}

TEST_F(QuantizedMlpTest, HardwareFaultDegradesOrPreservesAccuracy) {
  Accelerator accel(TestAccel());
  Driver driver(accel);
  const double clean =
      quantized_->AccuracyAccel(*test_, driver, Dataflow::kWeightStationary);
  // A high-bit stuck-at-1 in WS corrupts a full column of every layer's
  // output — accuracy should drop visibly.
  FaultInjector injector(
      {StuckAtAdder(PeCoord{3, 5}, 20, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  const double faulty =
      quantized_->AccuracyAccel(*test_, driver, Dataflow::kWeightStationary);
  accel.array().ClearFaultHook();
  EXPECT_LT(faulty, clean);
  EXPECT_GT(injector.activations(), 0u);
}

TEST_F(QuantizedMlpTest, AppFiShowsDegradationLikeHardwareFault) {
  // The LLTFI-style path perturbs the same coordinates as the hardware
  // fault. Magnitudes differ on K-tiled layers with real data (the
  // hardware reapplies the stuck bit on every tile pass, the app-level
  // model sets it once — bit-exact agreement is only guaranteed on the
  // extraction workload, proven in the appfi cross-validation tests), so
  // the contract here is qualitative: both paths degrade accuracy well
  // below clean inference.
  Accelerator accel(TestAccel());
  Driver driver(accel);
  const double clean =
      quantized_->AccuracyAccel(*test_, driver, Dataflow::kWeightStationary);
  const FaultSpec fault =
      StuckAtAdder(PeCoord{3, 5}, 24, StuckPolarity::kStuckAt1);
  FaultInjector injector({fault}, accel.config().array);
  accel.array().InstallFaultHook(&injector);
  const double hw_accuracy =
      quantized_->AccuracyAccel(*test_, driver, Dataflow::kWeightStationary);
  accel.array().ClearFaultHook();
  const double appfi_accuracy = quantized_->AccuracyAppFi(
      *test_, TestAccel(), Dataflow::kWeightStationary, {&fault, 1});
  EXPECT_LT(hw_accuracy, clean - 0.1);
  EXPECT_LT(appfi_accuracy, clean - 0.1);
}

TEST_F(QuantizedMlpTest, NoFaultAppFiEqualsCpu) {
  const auto cpu = quantized_->PredictCpu(test_->inputs);
  const auto appfi = quantized_->PredictAppFi(
      test_->inputs, TestAccel(), Dataflow::kWeightStationary, {});
  EXPECT_EQ(cpu, appfi);
}

TEST_F(QuantizedMlpTest, QuantizeInputsBounded) {
  const auto xq = quantized_->QuantizeInputs(test_->inputs);
  EXPECT_EQ(xq.dim(0), test_->size());
  EXPECT_EQ(xq.dim(1), kDigitPixels);
}

}  // namespace
}  // namespace saffire
