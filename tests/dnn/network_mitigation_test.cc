// Mitigated PreparedNetwork::Run: on a fault-free executor the remap
// policies are pure permutations — logits and per-layer outputs are
// byte-identical to the unmitigated inference on every dataflow — while
// pruning zeroes exactly the planned channels. Also covers the
// channel-salience surface the planner consumes.
#include "dnn/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "accel/controller.h"
#include "fi/fault.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig SmallAccel() {
  AccelConfig config;
  config.array.rows = 8;
  config.array.cols = 8;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

NetworkSpec SmallMlp() {
  NetworkSpec spec;
  spec.kind = NetworkKind::kMlp;
  spec.batch = 8;
  spec.hidden = 8;
  spec.train_samples = 60;
  spec.train_epochs = 10;
  spec.train_target = 0.8;
  return spec;
}

LayerGemm Reference() {
  return [](int, const Int8Tensor& a, const Int8Tensor& b) {
    return GemmRef(a, b);
  };
}

void ExpectIdentical(const PreparedNetwork::Inference& actual,
                     const PreparedNetwork::Inference& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.layer_outputs.size(), expected.layer_outputs.size());
  for (std::size_t layer = 0; layer < expected.layer_outputs.size();
       ++layer) {
    const Int32Tensor& want = expected.layer_outputs[layer];
    const Int32Tensor& got = actual.layer_outputs[layer];
    ASSERT_EQ(got.size(), want.size());
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got.flat(i), want.flat(i))
          << label << ": layer " << layer << " element " << i;
    }
  }
  ASSERT_EQ(actual.logits.size(), expected.logits.size());
  for (std::int64_t i = 0; i < expected.logits.size(); ++i) {
    ASSERT_EQ(actual.logits.flat(i), expected.logits.flat(i))
        << label << ": logit " << i;
  }
  EXPECT_EQ(actual.top1, expected.top1) << label;
}

TEST(NetworkMitigationTest, SalienceMatchesLayerWidths) {
  const PreparedNetwork network(SmallMlp());
  ASSERT_EQ(network.layer_count(), 2);
  for (std::int64_t layer = 0; layer < network.layer_count(); ++layer) {
    const std::vector<double>& salience = network.channel_salience(layer);
    ASSERT_EQ(static_cast<std::int64_t>(salience.size()),
              network.layer_workload(layer).GemmN());
    for (const double s : salience) EXPECT_GE(s, 0.0);
  }
}

TEST(NetworkMitigationTest, EmptyAndIdentityPlansAreNoOps) {
  const PreparedNetwork network(SmallMlp());
  const PreparedNetwork::Inference golden = network.Run(Reference());
  ExpectIdentical(network.Run(Reference(), {}), golden, "empty plans");
  std::vector<LayerMitigationPlan> identity(
      static_cast<std::size_t>(network.layer_count()));
  ExpectIdentical(network.Run(Reference(), identity), golden,
                  "identity plans");
}

TEST(NetworkMitigationTest, ColumnRemapIsByteIdenticalFaultFreePerDataflow) {
  const PreparedNetwork network(SmallMlp());
  const AccelConfig accel = SmallAccel();
  const PreparedNetwork::Inference golden = network.Run(Reference());
  const FaultSpec fault = StuckAtAdder({1, 2}, 24, StuckPolarity::kStuckAt1);
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kInputStationary}) {
    std::vector<LayerMitigationPlan> plans;
    for (std::int64_t layer = 0; layer < network.layer_count(); ++layer) {
      plans.push_back(PlanLayerMitigation(
          MitigationPolicy::kColumnRemap, network.layer_workload(layer),
          accel, dataflow, fault, network.channel_salience(layer)));
    }
    ExpectIdentical(network.Run(Reference(), plans), golden,
                    "column remap " + ToString(dataflow));
  }
}

TEST(NetworkMitigationTest, RowRemapIsByteIdenticalFaultFreePerDataflow) {
  const PreparedNetwork network(SmallMlp());
  const AccelConfig accel = SmallAccel();
  const PreparedNetwork::Inference golden = network.Run(Reference());
  // Capture each layer's weights once: the planner ranks K-rows by them.
  std::vector<Int8Tensor> weights(
      static_cast<std::size_t>(network.layer_count()), Int8Tensor({1, 1}));
  network.Run([&](int layer, const Int8Tensor& a, const Int8Tensor& b) {
    weights[static_cast<std::size_t>(layer)] = b;
    return GemmRef(a, b);
  });
  FaultSpec fault;
  fault.pe = {3, 1};
  fault.signal = MacSignal::kWeightOperand;
  fault.bit = 5;
  fault.polarity = StuckPolarity::kStuckAt1;
  for (const Dataflow dataflow :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kInputStationary}) {
    std::vector<LayerMitigationPlan> plans;
    for (std::int64_t layer = 0; layer < network.layer_count(); ++layer) {
      plans.push_back(PlanLayerMitigation(
          MitigationPolicy::kRowRemap, network.layer_workload(layer), accel,
          dataflow, fault, network.channel_salience(layer),
          &weights[static_cast<std::size_t>(layer)]));
    }
    ExpectIdentical(network.Run(Reference(), plans), golden,
                    "row remap " + ToString(dataflow));
  }
}

TEST(NetworkMitigationTest, PruneZeroesPlannedChannelsInLayerOutput) {
  NetworkSpec spec;
  spec.kind = NetworkKind::kExtraction;
  spec.batch = 4;
  spec.extraction_k = 8;
  spec.extraction_n = 8;
  const PreparedNetwork network(spec);
  const PreparedNetwork::Inference golden = network.Run(Reference());
  const FaultSpec fault = StuckAtAdder({2, 5}, 8, StuckPolarity::kStuckAt1);
  std::vector<LayerMitigationPlan> plans{PlanLayerMitigation(
      MitigationPolicy::kPruneChannel, network.layer_workload(0),
      SmallAccel(), Dataflow::kWeightStationary, fault,
      network.channel_salience(0))};
  ASSERT_FALSE(plans[0].pruned.empty());
  const PreparedNetwork::Inference pruned =
      network.Run(Reference(), plans);
  const Int32Tensor& out = pruned.layer_outputs[0];
  const Int32Tensor& want = golden.layer_outputs[0];
  for (std::int64_t m = 0; m < out.dim(0); ++m) {
    for (std::int64_t j = 0; j < out.dim(1); ++j) {
      const bool is_pruned = j == plans[0].pruned[0];
      EXPECT_EQ(out(m, j), is_pruned ? 0 : want(m, j))
          << "row " << m << " col " << j;
    }
  }
}

TEST(NetworkMitigationTest, ObserverSeesLogicalTensorsAndCanCorrect) {
  // The observer receives the logical-space operands; mutating `out`
  // propagates into the rest of the inference.
  const PreparedNetwork network(SmallMlp());
  const PreparedNetwork::Inference golden = network.Run(Reference());
  std::vector<LayerMitigationPlan> plans(
      static_cast<std::size_t>(network.layer_count()));
  int calls = 0;
  const PreparedNetwork::Inference observed = network.Run(
      Reference(), plans,
      [&](int layer, const Int8Tensor& a, const Int8Tensor& b,
          Int32Tensor& out) {
        ++calls;
        const WorkloadSpec& workload = network.layer_workload(layer);
        EXPECT_EQ(a.dim(1), workload.GemmK());
        EXPECT_EQ(b.dim(1), workload.GemmN());
        EXPECT_EQ(out.dim(1), workload.GemmN());
      });
  EXPECT_EQ(calls, 2);
  ExpectIdentical(observed, golden, "observer");
}

}  // namespace
}  // namespace saffire
