#include "mitigation/abft.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "fi/injector.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig TestConfig() {
  AccelConfig config;
  config.max_compute_rows = 256;
  config.spad_rows = 512;
  config.acc_rows = 256;
  config.dram_bytes = 8 << 20;
  return config;
}

Int8Tensor RandomInt8(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-40, 40));
  }
  return t;
}

// Strictly positive operands guarantee positive outputs, so a stuck-at-1
// on a high clear bit corrupts every reached element (no value masking).
Int8Tensor RandomPositive(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Int8Tensor t({rows, cols});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(1, 40));
  }
  return t;
}

TEST(VerifyAndCorrectTest, CleanResultVerifies) {
  Rng rng(1);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  auto c = GemmRef(a, b);
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kClean);
  EXPECT_TRUE(report.verified_after_correction);
  EXPECT_EQ(report.corrections, 0);
}

TEST(VerifyAndCorrectTest, SingleElementCorrected) {
  Rng rng(2);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto golden = GemmRef(a, b);
  auto c = golden;
  c(3, 5) += 777;
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleElement);
  EXPECT_EQ(report.corrections, 1);
  EXPECT_TRUE(report.verified_after_correction);
  EXPECT_EQ(c, golden);
}

TEST(VerifyAndCorrectTest, SingleColumnCorrected) {
  Rng rng(3);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto golden = GemmRef(a, b);
  auto c = golden;
  for (std::int64_t r = 0; r < 8; ++r) {
    c(r, 5) += 256 + static_cast<std::int32_t>(r);  // non-uniform deltas
  }
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleColumn);
  EXPECT_EQ(report.corrections, 8);
  EXPECT_TRUE(report.verified_after_correction);
  EXPECT_EQ(c, golden);
}

TEST(VerifyAndCorrectTest, SingleRowCorrected) {
  Rng rng(4);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto golden = GemmRef(a, b);
  auto c = golden;
  for (std::int64_t j = 0; j < 8; ++j) {
    c(2, j) -= 100 + static_cast<std::int32_t>(j);
  }
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleRow);
  EXPECT_TRUE(report.verified_after_correction);
  EXPECT_EQ(c, golden);
}

TEST(VerifyAndCorrectTest, MultiColumnDetectedNotCorrected) {
  Rng rng(5);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto golden = GemmRef(a, b);
  auto c = golden;
  for (std::int64_t r = 0; r < 8; ++r) {
    c(r, 2) += 256;
    c(r, 6) += 512;
  }
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kComplex);
  EXPECT_FALSE(report.verified_after_correction);
  EXPECT_EQ(report.corrections, 0);
  EXPECT_EQ(report.flagged_cols.size(), 2u);
}

TEST(VerifyAndCorrectTest, CancellingDeltasEscapeRowChecksumButNotColumn) {
  // Classic ABFT limitation probe: +d and −d in the same row cancel in the
  // row checksum but both columns still flag.
  Rng rng(6);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  auto c = GemmRef(a, b);
  c(3, 1) += 500;
  c(3, 6) -= 500;
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_TRUE(report.flagged_rows.empty());
  EXPECT_EQ(report.flagged_cols.size(), 2u);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kComplex);
}

TEST(VerifyAndCorrectTest, RejectsShapeMismatch) {
  auto c = Int32Tensor({2, 2});
  EXPECT_THROW(
      VerifyAndCorrect(Int8Tensor({2, 3}), Int8Tensor({3, 3}), c),
      std::invalid_argument);
}

// --- End-to-end against real hardware faults -------------------------------

TEST(AbftGemmTest, CorrectsWsColumnFault) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  AbftGemm abft(driver);
  Rng rng(7);
  const auto a = RandomPositive(rng, 16, 16);
  const auto b = RandomPositive(rng, 16, 16);
  const auto golden = GemmRef(a, b);

  // High stuck bit so every element of the column is visibly corrupted.
  FaultInjector injector(
      {StuckAtAdder(PeCoord{4, 9}, 24, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  AbftReport report;
  const auto corrected = abft.Multiply(a, b, ExecOptions{}, &report);
  accel.array().ClearFaultHook();

  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleColumn);
  EXPECT_TRUE(report.verified_after_correction);
  EXPECT_EQ(corrected, golden);
}

TEST(AbftGemmTest, CorrectsOsElementFault) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  AbftGemm abft(driver);
  Rng rng(8);
  const auto a = RandomPositive(rng, 16, 16);
  const auto b = RandomPositive(rng, 16, 16);
  const auto golden = GemmRef(a, b);

  FaultInjector injector(
      {StuckAtAdder(PeCoord{4, 9}, 24, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  ExecOptions options;
  options.dataflow = Dataflow::kOutputStationary;
  AbftReport report;
  const auto corrected = abft.Multiply(a, b, options, &report);
  accel.array().ClearFaultHook();

  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleElement);
  EXPECT_EQ(corrected, golden);
}

TEST(AbftGemmTest, CorrectsIsRowFault) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  AbftGemm abft(driver);
  Rng rng(9);
  const auto a = RandomPositive(rng, 16, 16);
  const auto b = RandomPositive(rng, 16, 16);
  const auto golden = GemmRef(a, b);

  FaultInjector injector(
      {StuckAtAdder(PeCoord{4, 9}, 24, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  ExecOptions options;
  options.dataflow = Dataflow::kInputStationary;
  AbftReport report;
  const auto corrected = abft.Multiply(a, b, options, &report);
  accel.array().ClearFaultHook();

  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kSingleRow);
  EXPECT_EQ(corrected, golden);
}

TEST(AbftGemmTest, DetectsMultiTileFault) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  AbftGemm abft(driver);
  Rng rng(10);
  const auto a = RandomPositive(rng, 48, 48);
  const auto b = RandomPositive(rng, 48, 48);

  FaultInjector injector(
      {StuckAtAdder(PeCoord{4, 9}, 24, StuckPolarity::kStuckAt1)},
      accel.config().array);
  accel.array().InstallFaultHook(&injector);
  AbftReport report;
  (void)abft.Multiply(a, b, ExecOptions{}, &report);
  accel.array().ClearFaultHook();

  // Three corrupted columns (9, 25, 41) under WS: detected, uncorrectable.
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kComplex);
  EXPECT_EQ(report.flagged_cols.size(), 3u);
}

TEST(AbftGemmTest, CleanHardwarePassesThrough) {
  Accelerator accel(TestConfig());
  Driver driver(accel);
  AbftGemm abft(driver);
  Rng rng(11);
  const auto a = RandomInt8(rng, 20, 20);
  const auto b = RandomInt8(rng, 20, 20);
  AbftReport report;
  const auto c = abft.Multiply(a, b, ExecOptions{}, &report);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kClean);
  EXPECT_EQ(c, GemmRef(a, b));
}

TEST(AbftDiagnosisTest, RoundTripsEveryName) {
  EXPECT_EQ(ToString(AbftDiagnosis::kClean), "clean");
  EXPECT_EQ(ToString(AbftDiagnosis::kSingleColumn), "single-column");
  EXPECT_EQ(ToString(AbftDiagnosis::kComplex), "complex");
  for (const AbftDiagnosis diagnosis :
       {AbftDiagnosis::kClean, AbftDiagnosis::kSingleElement,
        AbftDiagnosis::kSingleColumn, AbftDiagnosis::kSingleRow,
        AbftDiagnosis::kComplex}) {
    EXPECT_EQ(ParseAbftDiagnosis(ToString(diagnosis)), diagnosis);
  }
}

TEST(AbftDiagnosisTest, ParseRejectsUnknownNamesNamingTheChoices) {
  try {
    ParseAbftDiagnosis("corrected");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("corrected"), std::string::npos) << message;
    EXPECT_NE(
        message.find("clean|single-element|single-column|single-row|complex"),
        std::string::npos)
        << message;
  }
}

// Multi-row-AND-column corruption — the underdetermined case: both checksum
// families flag, nothing is correctable, and the tensor is left untouched.
TEST(VerifyAndCorrectTest, ComplexPatternDetectedNotCorrected) {
  Rng rng(12);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  const auto golden = GemmRef(a, b);
  auto c = golden;
  for (std::int64_t j = 0; j < 8; ++j) c(1, j) += 300;  // full row
  for (std::int64_t r = 0; r < 8; ++r) c(r, 4) += 700;  // full column
  const auto tampered = c;
  const AbftReport report = VerifyAndCorrect(a, b, c);
  EXPECT_EQ(report.diagnosis, AbftDiagnosis::kComplex);
  EXPECT_TRUE(report.detected());
  EXPECT_FALSE(report.corrected());
  EXPECT_FALSE(report.verified_after_correction);
  EXPECT_EQ(report.corrections, 0);
  EXPECT_GT(report.flagged_rows.size(), 1u);
  EXPECT_GT(report.flagged_cols.size(), 1u);
  EXPECT_EQ(c, tampered);  // no partial repairs on an undiagnosable shape
}

// Re-verify semantics: a correction that lands must flip
// verified_after_correction back on, and the corrected()/detected()
// accessors summarize the report consistently across outcomes.
TEST(AbftReportTest, DetectedAndCorrectedAccessors) {
  Rng rng(13);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);

  auto clean = GemmRef(a, b);
  const AbftReport clean_report = VerifyAndCorrect(a, b, clean);
  EXPECT_FALSE(clean_report.detected());
  EXPECT_FALSE(clean_report.corrected());

  auto repairable = GemmRef(a, b);
  repairable(2, 6) -= 1234;
  const AbftReport repaired = VerifyAndCorrect(a, b, repairable);
  EXPECT_TRUE(repaired.detected());
  EXPECT_TRUE(repaired.corrected());
  EXPECT_TRUE(repaired.verified_after_correction);
}

TEST(AbftReportTest, ToJsonEmitsDiagnosisAndFlags) {
  Rng rng(14);
  const auto a = RandomInt8(rng, 8, 8);
  const auto b = RandomInt8(rng, 8, 8);
  auto c = GemmRef(a, b);
  for (std::int64_t r = 0; r < 8; ++r) c(r, 5) += 256;
  const AbftReport report = VerifyAndCorrect(a, b, c);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"diagnosis\":\"single-column\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"flagged_cols\":[5]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"corrections\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"verified_after_correction\":true"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace saffire
