// Mitigation planning and transforms (mitigation/remap.h): policy name
// round-trips, victim selection against the predicted reach, exact-inverse
// behavior of the remaps on a fault-free GEMM, channel pruning, and the
// row-remap masking property for stuck weight-operand bits.
#include "mitigation/remap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "accel/controller.h"
#include "fi/fault.h"
#include "fi/workload.h"
#include "tensor/gemm.h"

namespace saffire {
namespace {

AccelConfig Accel(std::int32_t rows, std::int32_t cols) {
  AccelConfig config;
  config.array.rows = rows;
  config.array.cols = cols;
  config.max_compute_rows = 64;
  config.spad_rows = 128;
  config.acc_rows = 64;
  config.dram_bytes = 1 << 20;
  return config;
}

WorkloadSpec Gemm(std::int64_t m, std::int64_t k, std::int64_t n) {
  WorkloadSpec workload;
  workload.name = "remap-test";
  workload.m = m;
  workload.k = k;
  workload.n = n;
  return workload;
}

// Deterministic small-valued operands with distinct rows/columns.
Int8Tensor FilledA(std::int64_t m, std::int64_t k) {
  Int8Tensor a({m, k});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      a(i, j) = static_cast<std::int8_t>((i * 5 + j * 3) % 11 - 5);
    }
  }
  return a;
}

Int8Tensor FilledB(std::int64_t k, std::int64_t n) {
  Int8Tensor b({k, n});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      b(i, j) = static_cast<std::int8_t>((i * 7 + j * 2) % 13 - 6);
    }
  }
  return b;
}

// Emulates the physical stuck weight-operand bit under weight-stationary
// streaming: array row r holds K-rows {r + rows·t}, array column c computes
// output columns {c + cols·t}, and every weight stored at those positions
// has `fault.bit` forced to the stuck value.
Int8Tensor ForceWeightBit(const Int8Tensor& b, const FaultSpec& fault,
                          std::int64_t rows, std::int64_t cols) {
  Int8Tensor out = b;
  for (std::int64_t row = fault.pe.row; row < b.dim(0); row += rows) {
    for (std::int64_t col = fault.pe.col; col < b.dim(1); col += cols) {
      auto bits = static_cast<std::uint8_t>(out(row, col));
      if (fault.polarity == StuckPolarity::kStuckAt1) {
        bits = static_cast<std::uint8_t>(bits | (1u << fault.bit));
      } else {
        bits = static_cast<std::uint8_t>(bits & ~(1u << fault.bit));
      }
      out(row, col) = static_cast<std::int8_t>(bits);
    }
  }
  return out;
}

TEST(MitigationPolicyTest, NamesRoundTrip) {
  for (int i = 0; i < kNumMitigationPolicies; ++i) {
    const auto policy = static_cast<MitigationPolicy>(i);
    EXPECT_EQ(ParseMitigationPolicy(ToString(policy)), policy);
  }
  EXPECT_EQ(ToString(MitigationPolicy::kColumnRemap), "column_remap");
  EXPECT_THROW(ParseMitigationPolicy("colremap"), std::invalid_argument);
}

TEST(MitigationPolicyTest, PredictorNeedMatchesPolicyFamily) {
  EXPECT_FALSE(MitigationNeedsPredictor(MitigationPolicy::kNone));
  EXPECT_FALSE(MitigationNeedsPredictor(MitigationPolicy::kAbftCorrect));
  EXPECT_TRUE(MitigationNeedsPredictor(MitigationPolicy::kColumnRemap));
  EXPECT_TRUE(MitigationNeedsPredictor(MitigationPolicy::kRowRemap));
  EXPECT_TRUE(MitigationNeedsPredictor(MitigationPolicy::kPruneChannel));
}

TEST(PlanLayerMitigationTest, ColumnRemapSendsLeastSalientToFaultyColumn) {
  const WorkloadSpec workload = Gemm(4, 8, 8);
  const FaultSpec fault = StuckAtAdder({2, 5}, 8, StuckPolarity::kStuckAt1);
  const std::vector<double> salience = {8, 7, 6, 5, 4, 3, 2, 1};
  const LayerMitigationPlan plan = PlanLayerMitigation(
      MitigationPolicy::kColumnRemap, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, salience);
  ASSERT_EQ(plan.reached_cols, (std::vector<std::int64_t>{5}));
  ASSERT_EQ(plan.col_perm.size(), 8u);
  // Physical column 5 computes the least-salient logical channel (7); the
  // placement is a swap, so channel 5 moves to physical column 7.
  EXPECT_EQ(plan.col_perm[5], 7);
  EXPECT_EQ(plan.col_perm[7], 5);
  EXPECT_EQ(plan.col_perm[0], 0);
  EXPECT_FALSE(plan.identity());
}

TEST(PlanLayerMitigationTest, MaskedSiteYieldsIdentityPlan) {
  // A 4-column workload on the 8-column array never routes data through
  // array column 6: the site is structurally masked, nothing to mitigate.
  const WorkloadSpec workload = Gemm(4, 8, 4);
  const FaultSpec fault = StuckAtAdder({2, 6}, 8, StuckPolarity::kStuckAt1);
  const LayerMitigationPlan plan = PlanLayerMitigation(
      MitigationPolicy::kColumnRemap, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, {});
  EXPECT_TRUE(plan.reached_cols.empty());
  EXPECT_TRUE(plan.identity());
}

TEST(PlanLayerMitigationTest, NoneAndAbftPlansSkipThePredictor) {
  const WorkloadSpec workload = Gemm(4, 8, 8);
  // kActForward is not predictor-covered; the blind policies must still
  // plan (the predictor-backed ones throw upstream via Validate).
  FaultSpec fault = StuckAtAdder({1, 1}, 2, StuckPolarity::kStuckAt1);
  fault.signal = MacSignal::kActForward;
  const LayerMitigationPlan none = PlanLayerMitigation(
      MitigationPolicy::kNone, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, {});
  EXPECT_TRUE(none.identity());
  const LayerMitigationPlan abft = PlanLayerMitigation(
      MitigationPolicy::kAbftCorrect, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, {});
  EXPECT_TRUE(abft.abft);
  EXPECT_TRUE(abft.col_perm.empty());
  EXPECT_THROW(PlanLayerMitigation(MitigationPolicy::kColumnRemap, workload,
                                   Accel(8, 8), Dataflow::kWeightStationary,
                                   fault, {}),
               std::invalid_argument);
}

TEST(RemapTransformTest, ColumnRemapIsExactInverseOnFaultFreeGemm) {
  const WorkloadSpec workload = Gemm(4, 8, 8);
  const FaultSpec fault = StuckAtAdder({2, 5}, 8, StuckPolarity::kStuckAt1);
  const std::vector<double> salience = {8, 7, 6, 5, 4, 3, 2, 1};
  const LayerMitigationPlan plan = PlanLayerMitigation(
      MitigationPolicy::kColumnRemap, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, salience);
  const Int8Tensor a = FilledA(4, 8);
  const Int8Tensor b = FilledB(8, 8);
  const Int32Tensor golden = GemmRef(a, b);
  const Int32Tensor restored = RestoreOutput(
      plan, GemmRef(PermuteInputColumns(plan, a), TransformWeights(plan, b)));
  ASSERT_EQ(restored.dim(0), golden.dim(0));
  ASSERT_EQ(restored.dim(1), golden.dim(1));
  for (std::int64_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(restored.flat(i), golden.flat(i)) << "element " << i;
  }
  // EffectiveWeights cancels the permutations: no prune, so it is b itself.
  const Int8Tensor effective = EffectiveWeights(plan, b);
  for (std::int64_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(effective.flat(i), b.flat(i));
  }
}

TEST(RemapTransformTest, PruneZeroesPlannedChannelsAndNothingElse) {
  const WorkloadSpec workload = Gemm(4, 8, 8);
  const FaultSpec fault = StuckAtAdder({2, 5}, 8, StuckPolarity::kStuckAt1);
  const LayerMitigationPlan plan = PlanLayerMitigation(
      MitigationPolicy::kPruneChannel, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, {});
  ASSERT_EQ(plan.pruned, (std::vector<std::int64_t>{5}));
  const Int8Tensor a = FilledA(4, 8);
  const Int8Tensor b = FilledB(8, 8);
  const Int32Tensor golden = GemmRef(a, b);
  const Int32Tensor out =
      RestoreOutput(plan, GemmRef(a, TransformWeights(plan, b)));
  for (std::int64_t m = 0; m < out.dim(0); ++m) {
    for (std::int64_t j = 0; j < out.dim(1); ++j) {
      EXPECT_EQ(out(m, j), j == 5 ? 0 : golden(m, j))
          << "row " << m << " col " << j;
    }
  }
  const Int8Tensor effective = EffectiveWeights(plan, b);
  for (std::int64_t i = 0; i < b.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      EXPECT_EQ(effective(i, j), j == 5 ? 0 : b(i, j));
    }
  }
}

TEST(RemapTransformTest, RowRemapMasksStuckWeightOperandBit) {
  // 4×4 array, K = 8: the faulty array row 1 holds K-rows {1, 5}. Exactly
  // rows 2 and 6 carry bit 2 already set at the faulty column, so the
  // planner must route them onto the faulty row, where a stuck-at-1 on
  // bit 2 then changes nothing.
  const std::int64_t m = 3, k = 8, n = 4;
  const WorkloadSpec workload = Gemm(m, k, n);
  const AccelConfig accel = Accel(4, 4);
  FaultSpec fault;
  fault.pe = {1, 1};
  fault.signal = MacSignal::kWeightOperand;
  fault.bit = 2;
  fault.polarity = StuckPolarity::kStuckAt1;

  Int8Tensor b({k, n});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) b(i, j) = 3;  // bit 2 clear
  }
  b(2, 1) = 4;  // bit 2 set: conflict-free with the stuck value
  b(6, 1) = 4;
  const Int8Tensor a = FilledA(m, k);
  const Int32Tensor golden = GemmRef(a, b);

  const LayerMitigationPlan plan =
      PlanLayerMitigation(MitigationPolicy::kRowRemap, workload, accel,
                          Dataflow::kWeightStationary, fault, {}, &b);
  ASSERT_EQ(plan.k_perm.size(), static_cast<std::size_t>(k));
  EXPECT_EQ(plan.k_perm[1], 2);
  EXPECT_EQ(plan.k_perm[5], 6);

  // Unmitigated, the stuck bit corrupts the column 1 product.
  const Int32Tensor faulty =
      GemmRef(a, ForceWeightBit(b, fault, accel.array.rows,
                                accel.array.cols));
  bool corrupted = false;
  for (std::int64_t i = 0; i < golden.size(); ++i) {
    corrupted = corrupted || faulty.flat(i) != golden.flat(i);
  }
  EXPECT_TRUE(corrupted);

  // Remapped, the faulty row stores rows whose bit already matches the
  // stuck value: the physical fault is fully masked and the restored
  // output is exactly golden.
  const Int8Tensor b_phys = TransformWeights(plan, b);
  const Int8Tensor b_phys_faulty =
      ForceWeightBit(b_phys, fault, accel.array.rows, accel.array.cols);
  for (std::int64_t i = 0; i < b_phys.size(); ++i) {
    EXPECT_EQ(b_phys_faulty.flat(i), b_phys.flat(i)) << "element " << i;
  }
  const Int32Tensor mitigated = RestoreOutput(
      plan, GemmRef(PermuteInputColumns(plan, a), b_phys_faulty));
  for (std::int64_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(mitigated.flat(i), golden.flat(i)) << "element " << i;
  }
}

TEST(RemapTransformTest, TransformsRejectMismatchedShapes) {
  const WorkloadSpec workload = Gemm(4, 8, 8);
  const FaultSpec fault = StuckAtAdder({2, 5}, 8, StuckPolarity::kStuckAt1);
  const LayerMitigationPlan plan = PlanLayerMitigation(
      MitigationPolicy::kColumnRemap, workload, Accel(8, 8),
      Dataflow::kWeightStationary, fault, {});
  const Int8Tensor narrow = FilledB(8, 4);
  EXPECT_THROW(TransformWeights(plan, narrow), std::invalid_argument);
  const Int32Tensor out({4, 4});
  EXPECT_THROW(RestoreOutput(plan, out), std::invalid_argument);
}

}  // namespace
}  // namespace saffire
